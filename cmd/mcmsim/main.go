// Command mcmsim fabricates chiplet batches, assembles multi-chip
// modules, and compares them against monolithic devices in yield and
// average two-qubit infidelity (paper Sections V, VII-C1/C2; Figs. 8-9).
//
// The full-figure modes run the registered "fig8"/"fig9" experiments
// from the experiment registry (the same artifacts cmd/figures emits);
// the single-system mode drives the ctx-first assembly API directly.
//
// Usage examples:
//
//	mcmsim -chiplet 20 -rows 3 -cols 3            # one MCM configuration
//	mcmsim -fig8 -batch 2000 -max 500             # full yield comparison (registry artifact)
//	mcmsim -fig9 -batch 2000 -max 500             # E_avg ratio heatmaps (registry artifact)
//	mcmsim -fig8 -scenario improved-links         # run under a non-paper device scenario
//	mcmsim -fig8 -workers 8                       # pin the worker-pool size
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"chipletqc/internal/assembly"
	"chipletqc/internal/eval"
	"chipletqc/internal/experiment"
	"chipletqc/internal/mcm"
	"chipletqc/internal/report"
	"chipletqc/internal/scenario"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "mcmsim:", err)
		os.Exit(1)
	}
}

// errUsage marks argument errors the FlagSet has already reported to
// the error stream; main exits 2 without repeating them.
var errUsage = errors.New("usage error")

// run executes the tool against args, writing reports to out. It is the
// testable core of the binary.
func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("mcmsim", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		scen      = fs.String("scenario", scenario.PaperName, "device scenario to run under (see `figures -scenarios`)")
		chiplet   = fs.Int("chiplet", 20, "chiplet size in qubits (catalog: 10..250)")
		rows      = fs.Int("rows", 2, "MCM rows")
		cols      = fs.Int("cols", 2, "MCM cols")
		batch     = fs.Int("batch", 0, "chiplet fabrication batch size (0 = the scenario's policy; paper 10000)")
		mono      = fs.Int("mono", 0, "monolithic Monte Carlo batch size (0 = the scenario's policy; paper 10000)")
		maxQ      = fs.Int("max", 500, "largest system size for -fig8/-fig9")
		seed      = fs.Int64("seed", 1, "RNG seed")
		workers   = fs.Int("workers", 0, "parallel workers (0 = all CPU cores; results identical either way)")
		precision = fs.Float64("precision", 0, "adaptive mode: stop each yield simulation once its 95% CI half-width reaches this (0 = the scenario's policy; negative forces fixed batch)")
		maxTrials = fs.Int("maxtrials", 0, "adaptive mode trial budget per simulation (0 = the scenario's policy, then batch size; negative resets)")
		relPrec   = fs.Float64("relprecision", 0, "adaptive mode relative target: stop once the CI half-width reaches this fraction of the yield (0 = the scenario's policy; negative disables)")
		smpl      = fs.String("sampling", "", "yield estimator: plain, stratified, or importance (\"\" = the scenario's policy; none = historical inline path)")
		fig8      = fs.Bool("fig8", false, "run the registered fig8 experiment (full yield comparison)")
		fig9      = fs.Bool("fig9", false, "run the registered fig9 experiment (E_avg ratio heatmaps)")
		csv       = fs.Bool("csv", false, "emit CSV")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	scn, err := scenario.Lookup(*scen)
	if err != nil {
		return err
	}
	cfg := eval.ConfigFor(scn, *seed)
	if *batch > 0 {
		cfg.ChipletBatch = *batch
	}
	if *mono > 0 {
		cfg.MonoBatch = *mono
	}
	cfg.MaxQubits = *maxQ
	cfg.Workers = *workers
	// 0 inherits the scenario's trial policy; negative forces fixed-batch.
	cfg.ApplyTrialPolicyOverrides(*precision, *maxTrials)
	cfg.ApplySamplingOverrides(*smpl, *relPrec)
	if err := cfg.Sampling.Validate(); err != nil {
		return err
	}

	switch {
	case *fig8:
		return experiment.RunAndRender(ctx, "fig8", cfg, out, *csv)
	case *fig9:
		return experiment.RunAndRender(ctx, "fig9", cfg, out, *csv)
	default:
		return runSingle(ctx, scn, cfg, *chiplet, *rows, *cols, out, *csv)
	}
}

func runSingle(ctx context.Context, scn scenario.Scenario, cfg eval.Config, chiplet, rows, cols int, out io.Writer, csv bool) error {
	spec, err := scn.SpecForQubits(chiplet)
	if err != nil {
		return err
	}
	grid := mcm.Grid{Rows: rows, Cols: cols, Spec: spec}
	bcfg := scn.BatchConfig(cfg.Seed, nil, cfg.Workers)
	b, err := assembly.Fabricate(ctx, spec, cfg.ChipletBatch, bcfg)
	if err != nil {
		return err
	}
	mods, st, err := assembly.Assemble(ctx, b, grid, scn.AssembleConfig(cfg.Seed))
	if err != nil {
		return err
	}

	tb := report.New(fmt.Sprintf("MCM assembly: %s (scenario %s)", grid, scn.Name), "metric", "value")
	tb.Add("chiplets fabricated", st.BatchSize)
	tb.Add("collision-free chiplets", st.FreeChiplets)
	tb.Add("chiplet yield", report.F(st.ChipletYield, 4))
	tb.Add("complete MCMs", st.MCMs)
	tb.Add("chips used", st.ChipsUsed)
	tb.Add("leftover chiplets", st.Leftover)
	tb.Add("linked qubits per MCM", st.LinkedQubits)
	tb.Add("assembly yield", report.F(st.AssemblyYield, 4))
	tb.Add("post-assembly yield", report.F(st.PostAssemblyYield, 4))
	if len(mods) > 0 {
		var sum float64
		for _, m := range mods {
			sum += m.EAvg()
		}
		tb.Add("mean E_avg across MCMs", report.F(sum/float64(len(mods)), 5))
		tb.Add("best MCM E_avg", report.F(mods[0].EAvg(), 5))
		tb.Add("worst MCM E_avg", report.F(mods[len(mods)-1].EAvg(), 5))
	}
	return emit(tb, out, csv)
}

func emit(tb *report.Table, out io.Writer, csv bool) error {
	if csv {
		return tb.WriteCSV(out)
	}
	return tb.WriteText(out)
}
