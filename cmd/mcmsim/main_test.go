package main

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestRunSingleSmoke exercises the single-system assembly mode at tiny
// scale.
func TestRunSingleSmoke(t *testing.T) {
	var out, errs strings.Builder
	err := run(context.Background(), []string{
		"-chiplet", "20", "-rows", "2", "-cols", "2",
		"-batch", "200", "-workers", "2",
	}, &out, &errs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"MCM assembly", "chiplet yield", "post-assembly yield"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in output:\n%s", want, got)
		}
	}
}

// TestRunFig8ThroughRegistry: the -fig8 mode renders the registered
// experiment's artifact, including its self-describing header.
func TestRunFig8ThroughRegistry(t *testing.T) {
	var out, errs strings.Builder
	err := run(context.Background(), []string{
		"-fig8", "-batch", "150", "-mono", "150", "-max", "60", "-workers", "2",
	}, &out, &errs)
	if err != nil {
		t.Fatalf("run -fig8: %v", err)
	}
	got := out.String()
	for _, want := range []string{"# experiment: fig8", "Fig. 8", "avg-improvement"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in artifact output:\n%s", want, got)
		}
	}
}

// TestRunCancelled pins ctx propagation through the registry path.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errs strings.Builder
	err := run(ctx, []string{"-fig9", "-batch", "100", "-mono", "100", "-max", "60"}, &out, &errs)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunRejectsBadChiplet(t *testing.T) {
	var out, errs strings.Builder
	if err := run(context.Background(), []string{"-chiplet", "33", "-batch", "10"}, &out, &errs); err == nil {
		t.Error("non-catalog chiplet size should return an error")
	}
}
