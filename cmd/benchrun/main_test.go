package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSingleSystemSmoke is a tiny end-to-end Fig. 10 run on one MCM
// system at reduced scale.
func TestRunSingleSystemSmoke(t *testing.T) {
	var out, errs strings.Builder
	err := run(context.Background(), []string{
		"-chiplet", "10", "-rows", "1", "-cols", "2",
		"-batch", "100", "-mono", "100", "-samples", "1", "-workers", "2",
	}, &out, &errs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "Fig. 10: benchmark fidelity ratio") {
		t.Errorf("missing Fig. 10 table header in output:\n%s", got)
	}
	// All seven benchmarks should have produced a row for the 1x2 system.
	if n := strings.Count(got, "1x2"); n < 7 {
		t.Errorf("expected >= 7 benchmark rows for the 1x2 system, got %d:\n%s", n, got)
	}
}

// TestRunPerfWritesRecord exercises -perf: the machine-readable yield
// hot-path record lands on disk with sane ns/op, trials/sec, and
// allocs/op fields.
func TestRunPerfWritesRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_yield.json")
	var out, errs strings.Builder
	if err := run(context.Background(), []string{"-perf", "-batch", "200", "-perfout", path}, &out, &errs); err != nil {
		t.Fatalf("run -perf: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("perf record not written: %v", err)
	}
	var records []perfRecord
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("perf record is not valid JSON: %v", err)
	}
	want := []string{
		"yield_simulate_fixed",
		"yield_simulate_adaptive_1pct",
		"yield_simulate_stratified",
		"yield_simulate_importance",
		"yield_tight_thresholds_e2e",
	}
	if len(records) != len(want) {
		t.Fatalf("records = %d, want %d (fixed + adaptive + stratified + importance + tight e2e)",
			len(records), len(want))
	}
	for i, r := range records {
		if r.Name != want[i] {
			t.Errorf("record %d named %q, want %q", i, r.Name, want[i])
		}
		if r.NsPerOp <= 0 || r.TrialsPerSec <= 0 {
			t.Errorf("%s: non-positive timing %+v", r.Name, r)
		}
		// The e2e record runs the tight-thresholds scenario to its own
		// adaptive stopping rule, so only the fixed-budget records are
		// bounded by the -batch flag.
		if r.TrialsUsed <= 0 || (r.Name != "yield_tight_thresholds_e2e" && r.TrialsUsed > 200) {
			t.Errorf("%s: trials_used = %d, want in (0, 200]", r.Name, r.TrialsUsed)
		}
		if r.AllocsPerOp < 0 {
			t.Errorf("%s: negative allocs", r.Name)
		}
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("missing confirmation line:\n%s", out.String())
	}
}

// TestRunPerfCheck exercises -perfcheck against both a generous and an
// impossible committed baseline: the generous one passes, the
// impossible one (1 ns/op) must be reported as a regression beyond the
// tolerance.
func TestRunPerfCheck(t *testing.T) {
	dir := t.TempDir()
	generous := filepath.Join(dir, "generous.json")
	impossible := filepath.Join(dir, "impossible.json")
	base := []perfRecord{
		{Name: "yield_simulate_fixed", NsPerOp: 1e15},
		{Name: "yield_simulate_adaptive_1pct", NsPerOp: 1e15},
		{Name: "yield_simulate_importance", NsPerOp: 1e15},
	}
	writeRecords := func(path string, rs []perfRecord) {
		data, err := json.Marshal(rs)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeRecords(generous, base)
	for i := range base {
		base[i].NsPerOp = 1
	}
	writeRecords(impossible, base)

	var out, errs strings.Builder
	if err := run(context.Background(), []string{"-perfcheck", generous, "-batch", "100"}, &out, &errs); err != nil {
		t.Errorf("perfcheck vs generous baseline should pass: %v", err)
	}
	if !strings.Contains(out.String(), "Perf check") {
		t.Errorf("missing perf check table:\n%s", out.String())
	}

	out.Reset()
	err := run(context.Background(), []string{"-perfcheck", impossible, "-batch", "100"}, &out, &errs)
	if err == nil {
		t.Fatal("perfcheck vs 1 ns/op baseline should fail")
	}
	if !strings.Contains(err.Error(), "perf regression") {
		t.Errorf("unexpected failure: %v", err)
	}
}

// TestRunRejectsBadChiplet pins error propagation: a non-catalog chiplet
// size surfaces as an error, not a process exit.
func TestRunRejectsBadChiplet(t *testing.T) {
	var out, errs strings.Builder
	if err := run(context.Background(), []string{"-chiplet", "33"}, &out, &errs); err == nil {
		t.Error("non-catalog chiplet size should return an error")
	}
}

// TestRunRejectsUnknownFlag pins flag parsing.
func TestRunRejectsUnknownFlag(t *testing.T) {
	var out, errs strings.Builder
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, &out, &errs); err == nil {
		t.Error("unknown flag should return an error")
	}
	if out.Len() != 0 {
		t.Errorf("flag diagnostics leaked into the report stream:\n%s", out.String())
	}
}

// TestRunHelpIsNotAnError pins -h: usage prints to the error stream and
// run returns nil so the process exits 0.
func TestRunHelpIsNotAnError(t *testing.T) {
	var out, errs strings.Builder
	if err := run(context.Background(), []string{"-h"}, &out, &errs); err != nil {
		t.Errorf("-h should not be an error, got %v", err)
	}
	if !strings.Contains(errs.String(), "-workers") {
		t.Errorf("usage should document -workers:\n%s", errs.String())
	}
}

// TestRunTable2ThroughRegistry: the -table2 mode renders the registered
// experiment's artifact.
func TestRunTable2ThroughRegistry(t *testing.T) {
	var out, errs strings.Builder
	if err := run(context.Background(), []string{"-table2"}, &out, &errs); err != nil {
		t.Fatalf("run -table2: %v", err)
	}
	got := out.String()
	for _, want := range []string{"# experiment: table2", "Table II", "2q_critical"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in artifact output:\n%s", want, got)
		}
	}
}
