package main

import (
	"strings"
	"testing"
)

// TestRunSingleSystemSmoke is a tiny end-to-end Fig. 10 run on one MCM
// system at reduced scale.
func TestRunSingleSystemSmoke(t *testing.T) {
	var out, errs strings.Builder
	err := run([]string{
		"-chiplet", "10", "-rows", "1", "-cols", "2",
		"-batch", "100", "-mono", "100", "-samples", "1", "-workers", "2",
	}, &out, &errs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "Fig. 10: benchmark fidelity ratio") {
		t.Errorf("missing Fig. 10 table header in output:\n%s", got)
	}
	// All seven benchmarks should have produced a row for the 1x2 system.
	if n := strings.Count(got, "1x2"); n < 7 {
		t.Errorf("expected >= 7 benchmark rows for the 1x2 system, got %d:\n%s", n, got)
	}
}

// TestRunRejectsBadChiplet pins error propagation: a non-catalog chiplet
// size surfaces as an error, not a process exit.
func TestRunRejectsBadChiplet(t *testing.T) {
	var out, errs strings.Builder
	if err := run([]string{"-chiplet", "33"}, &out, &errs); err == nil {
		t.Error("non-catalog chiplet size should return an error")
	}
}

// TestRunRejectsUnknownFlag pins flag parsing.
func TestRunRejectsUnknownFlag(t *testing.T) {
	var out, errs strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out, &errs); err == nil {
		t.Error("unknown flag should return an error")
	}
	if out.Len() != 0 {
		t.Errorf("flag diagnostics leaked into the report stream:\n%s", out.String())
	}
}

// TestRunHelpIsNotAnError pins -h: usage prints to the error stream and
// run returns nil so the process exits 0.
func TestRunHelpIsNotAnError(t *testing.T) {
	var out, errs strings.Builder
	if err := run([]string{"-h"}, &out, &errs); err != nil {
		t.Errorf("-h should not be an error, got %v", err)
	}
	if !strings.Contains(errs.String(), "-workers") {
		t.Errorf("usage should document -workers:\n%s", errs.String())
	}
}
