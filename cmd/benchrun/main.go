// Command benchrun compiles the paper's benchmark suite onto MCM and
// monolithic architectures and reports compiled gate counts (Table II)
// and application fidelity ratios (Fig. 10).
//
// Usage examples:
//
//	benchrun -table2                       # Table II gate counts
//	benchrun -chiplet 40 -rows 2 -cols 2   # Fig. 10 for one system
//	benchrun -all -max 300                 # Fig. 10 over enumerated systems
//	benchrun -all -workers 8               # pin the worker-pool size
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"chipletqc/internal/eval"
	"chipletqc/internal/mcm"
	"chipletqc/internal/report"
	"chipletqc/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
}

// errUsage marks argument errors the FlagSet has already reported to
// the error stream; main exits 2 without repeating them.
var errUsage = errors.New("usage error")

// run executes the tool against args, writing reports to out. It is the
// testable core of the binary: flag errors, compile failures, and report
// failures surface as returned errors instead of process exits.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("benchrun", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		table2  = fs.Bool("table2", false, "print Table II compiled benchmark details")
		all     = fs.Bool("all", false, "evaluate Fig. 10 over all enumerated systems")
		square  = fs.Bool("square", false, "restrict -all to square systems (Fig. 10b)")
		chiplet = fs.Int("chiplet", 20, "chiplet size for single-system evaluation")
		rows    = fs.Int("rows", 2, "MCM rows")
		cols    = fs.Int("cols", 2, "MCM cols")
		maxQ    = fs.Int("max", 500, "largest system size for -all")
		batch   = fs.Int("batch", 2000, "chiplet batch size")
		mono    = fs.Int("mono", 2000, "monolithic batch size")
		samples = fs.Int("samples", 3, "device instances averaged per architecture")
		seed    = fs.Int64("seed", 1, "RNG seed")
		workers = fs.Int("workers", 0, "parallel workers (0 = all CPU cores; results identical either way)")
		csv     = fs.Bool("csv", false, "emit CSV")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	cfg := eval.DefaultConfig(*seed)
	cfg.ChipletBatch = *batch
	cfg.MonoBatch = *mono
	cfg.MaxQubits = *maxQ
	cfg.Workers = *workers

	if *table2 {
		rowsOut, err := eval.Table2(cfg)
		if err != nil {
			return err
		}
		tb := report.New("Table II: compiled benchmarks (1q / 2q / 2q critical)",
			"chiplet", "dim", "qubits", "bench", "1q", "2q", "2q_critical")
		for _, r := range rowsOut {
			tb.Add(r.ChipletQubits, r.Dim, r.SystemQubits, r.Bench,
				r.Counts.OneQ, r.Counts.TwoQ, r.Counts.TwoQCritical)
		}
		return emit(tb, out, *csv)
	}

	var grids []mcm.Grid
	switch {
	case *all && *square:
		grids = mcm.SquareGrids(*maxQ)
	case *all:
		grids = mcm.EnumerateGrids(*maxQ)
	default:
		spec, err := topo.SpecForQubits(*chiplet)
		if err != nil {
			return err
		}
		grids = []mcm.Grid{{Rows: *rows, Cols: *cols, Spec: spec}}
	}

	pts, err := eval.Fig10(cfg, grids, *samples)
	if err != nil {
		return err
	}
	tb := report.New("Fig. 10: benchmark fidelity ratio (MCM / monolithic)",
		"chiplet", "dim", "qubits", "bench", "log_ratio", "ratio", "note")
	for _, p := range pts {
		note := ""
		logS, ratioS := report.F(p.LogRatio, 3), ""
		switch {
		case p.MonoZero:
			note = "mono 0% yield (paper red X)"
			logS, ratioS = "+inf", "inf"
		case math.IsNaN(p.LogRatio):
			note = "no MCM instances"
			logS, ratioS = "nan", "nan"
		default:
			ratioS = fmt.Sprintf("%.3g", p.Ratio())
		}
		tb.Add(p.Grid.Spec.Qubits(),
			fmt.Sprintf("%dx%d", p.Grid.Rows, p.Grid.Cols),
			p.Qubits, p.Bench, logS, ratioS, note)
	}
	return emit(tb, out, *csv)
}

func emit(tb *report.Table, out io.Writer, csv bool) error {
	if csv {
		return tb.WriteCSV(out)
	}
	return tb.WriteText(out)
}
