// Command benchrun compiles the paper's benchmark suite onto MCM and
// monolithic architectures and reports compiled gate counts (Table II)
// and application fidelity ratios (Fig. 10).
//
// The full-catalog modes (-table2, -all) run the registered "table2"
// and "fig10" experiments from the experiment registry; the
// single-system and -square modes drive the ctx-first eval API with
// custom grid selections.
//
// Usage examples:
//
//	benchrun -table2                       # Table II gate counts (registry artifact)
//	benchrun -chiplet 40 -rows 2 -cols 2   # Fig. 10 for one system
//	benchrun -all -max 300                 # Fig. 10 over enumerated systems (registry artifact)
//	benchrun -all -workers 8               # pin the worker-pool size
//	benchrun -perf                         # write BENCH_yield.json perf record
//	benchrun -perfcheck BENCH_yield.json   # fail on >10% ns/op regression vs the committed baseline
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"testing"

	"chipletqc/internal/eval"
	"chipletqc/internal/experiment"
	"chipletqc/internal/mcm"
	"chipletqc/internal/report"
	"chipletqc/internal/sampling"
	"chipletqc/internal/scenario"
	"chipletqc/internal/topo"
	"chipletqc/internal/yield"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
}

// errUsage marks argument errors the FlagSet has already reported to
// the error stream; main exits 2 without repeating them.
var errUsage = errors.New("usage error")

// run executes the tool against args, writing reports to out. It is the
// testable core of the binary: flag errors, compile failures, and report
// failures surface as returned errors instead of process exits.
func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("benchrun", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		scen      = fs.String("scenario", scenario.PaperName, "device scenario to run under (see `figures -scenarios`)")
		table2    = fs.Bool("table2", false, "print Table II compiled benchmark details (registry artifact)")
		all       = fs.Bool("all", false, "evaluate Fig. 10 over all enumerated systems (registry artifact)")
		square    = fs.Bool("square", false, "restrict -all to square systems (Fig. 10b)")
		chiplet   = fs.Int("chiplet", 20, "chiplet size for single-system evaluation")
		rows      = fs.Int("rows", 2, "MCM rows")
		cols      = fs.Int("cols", 2, "MCM cols")
		maxQ      = fs.Int("max", 500, "largest system size for -all")
		batch     = fs.Int("batch", 2000, "chiplet batch size (0 = the scenario's policy)")
		mono      = fs.Int("mono", 2000, "monolithic batch size (0 = the scenario's policy)")
		samples   = fs.Int("samples", 3, "device instances averaged per architecture")
		seed      = fs.Int64("seed", 1, "RNG seed")
		workers   = fs.Int("workers", 0, "parallel workers (0 = all CPU cores; results identical either way)")
		precision = fs.Float64("precision", 0, "adaptive mode: stop yield simulations once their 95% CI half-width reaches this (0 = the scenario's policy; negative forces fixed batch)")
		maxTrials = fs.Int("maxtrials", 0, "adaptive mode trial budget per simulation (0 = the scenario's policy, then batch size; negative resets)")
		relPrec   = fs.Float64("relprecision", 0, "adaptive mode relative target: stop once the CI half-width reaches this fraction of the yield (0 = the scenario's policy; negative disables)")
		smpl      = fs.String("sampling", "", "yield estimator: plain, stratified, or importance (\"\" = the scenario's policy; none = historical inline path)")
		perf      = fs.Bool("perf", false, "run the yield hot-path micro-benchmark and write a machine-readable perf record")
		perfOut   = fs.String("perfout", "BENCH_yield.json", "perf record output path for -perf")
		perfCheck = fs.String("perfcheck", "", "compare a fresh micro-benchmark against this committed baseline record; exit non-zero on regression")
		perfTol   = fs.Float64("perftol", 0.10, "allowed fractional ns/op regression for -perfcheck (0.10 = 10%)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file at exit")
		csv       = fs.Bool("csv", false, "emit CSV")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	// Profiling hooks: attributing a yield-throughput regression needs
	// the same pprof view the micro-benchmarks get, on the real binary.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(errw, "benchrun: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(errw, "benchrun: memprofile:", err)
			}
		}()
	}

	scn, err := scenario.Lookup(*scen)
	if err != nil {
		return err
	}
	cfg := eval.ConfigFor(scn, *seed)
	if *batch > 0 {
		cfg.ChipletBatch = *batch
	}
	if *mono > 0 {
		cfg.MonoBatch = *mono
	}
	cfg.MaxQubits = *maxQ
	cfg.Workers = *workers
	// 0 inherits the scenario's trial policy; negative forces fixed-batch.
	cfg.ApplyTrialPolicyOverrides(*precision, *maxTrials)
	cfg.ApplySamplingOverrides(*smpl, *relPrec)
	if err := cfg.Sampling.Validate(); err != nil {
		return err
	}
	cfg.Fig10Samples = *samples

	if *perfCheck != "" {
		return runPerfCheck(ctx, scn, *batch, *workers, *seed, *perfCheck, *perfTol, out)
	}
	if *perf {
		return runPerf(ctx, scn, *batch, *workers, *seed, *perfOut, out)
	}

	if *table2 {
		return experiment.RunAndRender(ctx, "table2", cfg, out, *csv)
	}
	if *all && !*square {
		return experiment.RunAndRender(ctx, "fig10", cfg, out, *csv)
	}

	// Custom grid selections (single system, or -all -square) drive the
	// ctx-first eval API directly.
	var grids []mcm.Grid
	if *all && *square {
		grids = mcm.SquareGridsFrom(scn.Catalog, *maxQ)
	} else {
		spec, err := scn.SpecForQubits(*chiplet)
		if err != nil {
			return err
		}
		grids = []mcm.Grid{{Rows: *rows, Cols: *cols, Spec: spec}}
	}

	pts, err := eval.Fig10(ctx, cfg, grids, *samples)
	if err != nil {
		return err
	}
	tb := report.New("Fig. 10: benchmark fidelity ratio (MCM / monolithic)",
		"chiplet", "dim", "qubits", "bench", "log_ratio", "ratio", "note")
	for _, p := range pts {
		note := ""
		logS, ratioS := report.F(p.LogRatio, 3), ""
		switch {
		case p.MonoZero:
			note = "mono 0% yield (paper red X)"
			logS, ratioS = "+inf", "inf"
		case math.IsNaN(p.LogRatio):
			note = "no MCM instances"
			logS, ratioS = "nan", "nan"
		default:
			ratioS = fmt.Sprintf("%.3g", p.Ratio())
		}
		tb.Add(p.Grid.Spec.Qubits(),
			fmt.Sprintf("%dx%d", p.Grid.Rows, p.Grid.Cols),
			p.Qubits, p.Bench, logS, ratioS, note)
	}
	return emit(tb, out, *csv)
}

func emit(tb *report.Table, out io.Writer, csv bool) error {
	if csv {
		return tb.WriteCSV(out)
	}
	return tb.WriteText(out)
}

// perfRecord is one machine-readable micro-benchmark measurement of the
// Monte Carlo yield hot path. cmd/benchrun -perf appends these to
// BENCH_yield.json so the perf trajectory (ns/op, trials/sec,
// allocs/op) is tracked across PRs by the CI benchmark artifact.
type perfRecord struct {
	Name         string  `json:"name"`
	Scenario     string  `json:"scenario"`
	Qubits       int     `json:"qubits"`
	Batch        int     `json:"batch"`
	Precision    float64 `json:"precision,omitempty"`
	TrialsUsed   int     `json:"trials_used"`
	Yield        float64 `json:"yield"`
	NsPerOp      float64 `json:"ns_per_op"`
	TrialsPerSec float64 `json:"trials_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
}

// measurePerf micro-benchmarks yield.Simulate on a 100-qubit device in
// fixed-batch, adaptive (1% precision), stratified, and
// importance-sampled (rare-event estimators, same fixed budget) modes,
// plus one end-to-end wall-time record of the tight-thresholds
// rare-event scenario (adaptive stop at 20% relative precision on a
// 24-qubit device). The records carry the scenario name so the CI perf
// trajectory distinguishes device worlds.
func measurePerf(ctx context.Context, scn scenario.Scenario, batch, workers int, seed int64) ([]perfRecord, error) {
	if batch <= 0 {
		batch = scn.Trials.ChipletBatch // -batch 0 = the scenario's policy, as elsewhere
	}
	d := topo.MonolithicDevice(topo.MonolithicSpec(100))
	base := scn.YieldConfig(batch, seed)
	base.Workers = workers
	// The fixed-mode record must stay fixed even under a scenario whose
	// trial policy is adaptive, or its ns/op is not comparable across
	// PRs; the adaptive record pins its own 1% precision below.
	base.Precision, base.MaxTrials, base.RelPrecision = 0, 0, 0
	base.Sampling = sampling.Spec{}

	measure := func(name, scnName string, dev *topo.Device, cfg yield.Config) (perfRecord, error) {
		res, err := yield.Simulate(ctx, dev, cfg) // warm-up + result snapshot
		if err != nil {
			return perfRecord{}, err
		}
		// Best-of-3: the minimum ns/op is far less sensitive to scheduler
		// noise than a single sample, which is what lets the perf gate
		// hold a tight tolerance without flaking.
		var br testing.BenchmarkResult
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := yield.Simulate(ctx, dev, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
			if rep == 0 || r.NsPerOp() < br.NsPerOp() {
				br = r
			}
		}
		ns := float64(br.NsPerOp())
		rec := perfRecord{
			Name:        name,
			Scenario:    scnName,
			Qubits:      dev.N,
			Batch:       cfg.Batch,
			Precision:   cfg.Precision,
			TrialsUsed:  res.Batch,
			Yield:       res.Fraction(),
			NsPerOp:     ns,
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		}
		if ns > 0 {
			rec.TrialsPerSec = float64(res.Batch) / (ns / 1e9)
		}
		return rec, nil
	}

	adaptive := base
	adaptive.Precision = 0.01
	stratifiedCfg := base
	stratifiedCfg.Sampling = sampling.Spec{Method: sampling.Stratified}
	importanceCfg := base
	importanceCfg.Sampling = sampling.Spec{Method: sampling.Importance}
	var records []perfRecord
	for _, m := range []struct {
		name string
		cfg  yield.Config
	}{
		{"yield_simulate_fixed", base},
		{"yield_simulate_adaptive_1pct", adaptive},
		{"yield_simulate_stratified", stratifiedCfg},
		{"yield_simulate_importance", importanceCfg},
	} {
		rec, err := measure(m.name, scn.Name, d, m.cfg)
		if err != nil {
			return nil, err
		}
		records = append(records, rec)
	}

	// End-to-end rare-event record: the tight-thresholds scenario on a
	// 24-qubit device, run to its adaptive stopping rule rather than a
	// fixed batch. This is the wall-time the campaign engine actually
	// pays per rare-event data point — trial count and per-trial cost
	// together — so proposal-quality regressions that per-trial ns/op
	// cannot see (a worse proposal needs more trials) still trip the
	// gate.
	tight, err := scenario.Lookup(scenario.TightThresholdsName)
	if err != nil {
		return nil, err
	}
	td := topo.MonolithicDevice(topo.MonolithicSpec(24))
	tcfg := tight.YieldConfig(0, seed)
	tcfg.Workers = workers
	tcfg.Precision = 0
	tcfg.RelPrecision = 0.2
	tcfg.MaxTrials = 1 << 20
	rec, err := measure("yield_tight_thresholds_e2e", tight.Name, td, tcfg)
	if err != nil {
		return nil, err
	}
	records = append(records, rec)
	return records, nil
}

// runPerf measures the hot-path records and writes them as JSON to path.
func runPerf(ctx context.Context, scn scenario.Scenario, batch, workers int, seed int64, path string, out io.Writer) error {
	records, err := measurePerf(ctx, scn, batch, workers, seed)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := perfTable(records).WriteText(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s\n", path)
	return nil
}

// runPerfCheck measures the hot-path records and compares each ns/op
// against the committed baseline at path, failing on any fractional
// regression beyond tol. Records present on only one side are reported
// but never fail the check, so the benchmark set can evolve without
// lock-step baseline updates.
func runPerfCheck(ctx context.Context, scn scenario.Scenario, batch, workers int, seed int64, path string, tol float64, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("perfcheck baseline: %w", err)
	}
	var baseline []perfRecord
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("perfcheck baseline %s: %w", path, err)
	}
	base := map[string]perfRecord{}
	for _, r := range baseline {
		base[r.Name] = r
	}
	records, err := measurePerf(ctx, scn, batch, workers, seed)
	if err != nil {
		return err
	}
	tb := report.New(fmt.Sprintf("Perf check vs %s (tolerance %+.0f%%)", path, tol*100),
		"name", "baseline_ns", "current_ns", "delta", "verdict")
	var failures []string
	for _, r := range records {
		b, ok := base[r.Name]
		if !ok || b.NsPerOp <= 0 {
			tb.Add(r.Name, "-", fmt.Sprintf("%.0f", r.NsPerOp), "-", "new (not gated)")
			continue
		}
		delta := r.NsPerOp/b.NsPerOp - 1
		verdict := "ok"
		if delta > tol {
			verdict = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)",
				r.Name, b.NsPerOp, r.NsPerOp, delta*100))
		}
		tb.Add(r.Name, fmt.Sprintf("%.0f", b.NsPerOp), fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%+.1f%%", delta*100), verdict)
	}
	if err := tb.WriteText(out); err != nil {
		return err
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf regression beyond %.0f%%: %s", tol*100, strings.Join(failures, "; "))
	}
	return nil
}

// perfTable renders perf records for human reading.
func perfTable(records []perfRecord) *report.Table {
	tb := report.New("Yield hot-path micro-benchmark",
		"name", "trials", "ns_per_op", "trials_per_sec", "allocs_per_op")
	for _, r := range records {
		tb.Add(r.Name, r.TrialsUsed, fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.3g", r.TrialsPerSec), r.AllocsPerOp)
	}
	return tb
}
