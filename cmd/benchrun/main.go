// Command benchrun compiles the paper's benchmark suite onto MCM and
// monolithic architectures and reports compiled gate counts (Table II)
// and application fidelity ratios (Fig. 10).
//
// Usage examples:
//
//	benchrun -table2                       # Table II gate counts
//	benchrun -chiplet 40 -rows 2 -cols 2   # Fig. 10 for one system
//	benchrun -all -max 300                 # Fig. 10 over enumerated systems
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"chipletqc/internal/eval"
	"chipletqc/internal/mcm"
	"chipletqc/internal/report"
	"chipletqc/internal/topo"
)

func main() {
	var (
		table2  = flag.Bool("table2", false, "print Table II compiled benchmark details")
		all     = flag.Bool("all", false, "evaluate Fig. 10 over all enumerated systems")
		square  = flag.Bool("square", false, "restrict -all to square systems (Fig. 10b)")
		chiplet = flag.Int("chiplet", 20, "chiplet size for single-system evaluation")
		rows    = flag.Int("rows", 2, "MCM rows")
		cols    = flag.Int("cols", 2, "MCM cols")
		maxQ    = flag.Int("max", 500, "largest system size for -all")
		batch   = flag.Int("batch", 2000, "chiplet batch size")
		mono    = flag.Int("mono", 2000, "monolithic batch size")
		samples = flag.Int("samples", 3, "device instances averaged per architecture")
		seed    = flag.Int64("seed", 1, "RNG seed")
		csv     = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	cfg := eval.DefaultConfig(*seed)
	cfg.ChipletBatch = *batch
	cfg.MonoBatch = *mono
	cfg.MaxQubits = *maxQ

	if *table2 {
		rowsOut, err := eval.Table2(cfg)
		if err != nil {
			fatal(err)
		}
		tb := report.New("Table II: compiled benchmarks (1q / 2q / 2q critical)",
			"chiplet", "dim", "qubits", "bench", "1q", "2q", "2q_critical")
		for _, r := range rowsOut {
			tb.Add(r.ChipletQubits, r.Dim, r.SystemQubits, r.Bench,
				r.Counts.OneQ, r.Counts.TwoQ, r.Counts.TwoQCritical)
		}
		emit(tb, *csv)
		return
	}

	var grids []mcm.Grid
	switch {
	case *all && *square:
		grids = mcm.SquareGrids(*maxQ)
	case *all:
		grids = mcm.EnumerateGrids(*maxQ)
	default:
		spec, err := topo.SpecForQubits(*chiplet)
		if err != nil {
			fatal(err)
		}
		grids = []mcm.Grid{{Rows: *rows, Cols: *cols, Spec: spec}}
	}

	pts, err := eval.Fig10(cfg, grids, *samples)
	if err != nil {
		fatal(err)
	}
	tb := report.New("Fig. 10: benchmark fidelity ratio (MCM / monolithic)",
		"chiplet", "dim", "qubits", "bench", "log_ratio", "ratio", "note")
	for _, p := range pts {
		note := ""
		logS, ratioS := report.F(p.LogRatio, 3), ""
		switch {
		case p.MonoZero:
			note = "mono 0% yield (paper red X)"
			logS, ratioS = "+inf", "inf"
		case math.IsNaN(p.LogRatio):
			note = "no MCM instances"
			logS, ratioS = "nan", "nan"
		default:
			ratioS = fmt.Sprintf("%.3g", p.Ratio())
		}
		tb.Add(p.Grid.Spec.Qubits(),
			fmt.Sprintf("%dx%d", p.Grid.Rows, p.Grid.Cols),
			p.Qubits, p.Bench, logS, ratioS, note)
	}
	emit(tb, *csv)
}

func emit(tb *report.Table, csv bool) {
	var err error
	if csv {
		err = tb.WriteCSV(os.Stdout)
	} else {
		err = tb.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrun:", err)
	os.Exit(1)
}
