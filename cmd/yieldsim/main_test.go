package main

import (
	"context"
	"strings"
	"testing"
)

// TestRunSweepSmoke is a tiny end-to-end run of the default Fig. 4 sweep
// at reduced scale.
func TestRunSweepSmoke(t *testing.T) {
	var out, errs strings.Builder
	err := run(context.Background(), []string{"-batch", "50", "-max", "40", "-sigma", "0.014", "-step", "0.06", "-workers", "3"}, &out, &errs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "Collision-free yield vs qubits") {
		t.Errorf("missing sweep table header in output:\n%s", got)
	}
	if !strings.Contains(got, "Optimal frequency step per precision") {
		t.Errorf("missing optimum summary in output:\n%s", got)
	}
}

// TestRunChipletsSmoke exercises the -chiplets mode and CSV emission.
func TestRunChipletsSmoke(t *testing.T) {
	var out, errs strings.Builder
	if err := run(context.Background(), []string{"-chiplets", "-batch", "50", "-csv"}, &out, &errs); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "chiplet,yield") {
		t.Errorf("missing CSV header in output:\n%s", out.String())
	}
}

// TestRunWorkerCountInvariance asserts the CLI output is identical for
// any -workers value.
func TestRunWorkerCountInvariance(t *testing.T) {
	render := func(workers string) string {
		var out, errs strings.Builder
		if err := run(context.Background(), []string{"-batch", "80", "-max", "30", "-workers", workers}, &out, &errs); err != nil {
			t.Fatalf("run(-workers %s): %v", workers, err)
		}
		return out.String()
	}
	if serial, parallel := render("1"), render("8"); serial != parallel {
		t.Error("-workers 1 and -workers 8 rendered different reports")
	}
}

// TestRunAdaptivePrecision exercises the -precision flag end to end:
// the sweep reports trials and CI bounds, extreme-yield sizes stop
// before the full batch, and the report is worker-count invariant.
func TestRunAdaptivePrecision(t *testing.T) {
	render := func(workers string) string {
		var out, errs strings.Builder
		err := run(context.Background(), []string{
			"-batch", "5000", "-max", "30", "-sigma", "0.006", "-step", "0.06",
			"-precision", "0.02", "-workers", workers,
		}, &out, &errs)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	got := render("2")
	if !strings.Contains(got, "trials") || !strings.Contains(got, "ci_lo") {
		t.Errorf("adaptive run should report trials and CI columns:\n%s", got)
	}
	// Scaling-goal precision yields ~1 at these sizes, so the adaptive
	// run must stop at the first checkpoint instead of the 5000 budget.
	if !strings.Contains(got, "1.0000  250") {
		t.Errorf("near-certain yield should stop at the first checkpoint:\n%s", got)
	}
	if parallel := render("7"); parallel != got {
		t.Error("adaptive report differs across worker counts")
	}
}

// TestRunRejectsUnknownFlag pins flag parsing: unknown flags surface as
// errors, with diagnostics on the error stream rather than mixed into
// the report stream.
func TestRunRejectsUnknownFlag(t *testing.T) {
	var out, errs strings.Builder
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, &out, &errs); err == nil {
		t.Error("unknown flag should return an error")
	}
	if out.Len() != 0 {
		t.Errorf("flag diagnostics leaked into the report stream:\n%s", out.String())
	}
	if !strings.Contains(errs.String(), "definitely-not-a-flag") {
		t.Errorf("error stream should name the bad flag:\n%s", errs.String())
	}
}

// TestRunHelpIsNotAnError pins -h: usage prints to the error stream and
// run returns nil so the process exits 0.
func TestRunHelpIsNotAnError(t *testing.T) {
	var out, errs strings.Builder
	if err := run(context.Background(), []string{"-h"}, &out, &errs); err != nil {
		t.Errorf("-h should not be an error, got %v", err)
	}
	if !strings.Contains(errs.String(), "-workers") {
		t.Errorf("usage should document -workers:\n%s", errs.String())
	}
}
