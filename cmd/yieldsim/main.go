// Command yieldsim runs the collision-free yield Monte Carlo simulation
// of paper Section IV-B / Fig. 4: heavy-hex devices fabricated with
// per-qubit frequency noise, evaluated against the Table I collision
// criteria.
//
// Usage examples:
//
//	yieldsim                                # Fig. 4 sweep at defaults
//	yieldsim -sigma 0.014 -step 0.06 -max 500
//	yieldsim -chiplets                      # catalog chiplet yields
package main

import (
	"flag"
	"fmt"
	"os"

	analyticpkg "chipletqc/internal/analytic"
	"chipletqc/internal/fab"
	"chipletqc/internal/report"
	"chipletqc/internal/topo"
	"chipletqc/internal/yield"
)

func main() {
	var (
		batch    = flag.Int("batch", 1000, "devices per Monte Carlo batch")
		sigma    = flag.Float64("sigma", 0, "fabrication precision in GHz (0 = sweep the paper's three values)")
		step     = flag.Float64("step", 0, "frequency plan step in GHz (0 = sweep 0.04-0.07)")
		maxQ     = flag.Int("max", 1000, "largest device size in qubits")
		seed     = flag.Int64("seed", 1, "RNG seed")
		chiplets = flag.Bool("chiplets", false, "report catalog chiplet yields instead of the size sweep")
		analytic = flag.Bool("analytic", false, "add the closed-form yield estimate next to Monte Carlo")
		csv      = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	cfg := yield.DefaultConfig()
	cfg.Batch = *batch
	cfg.Seed = *seed

	if *chiplets {
		if *sigma > 0 {
			cfg.Model.Sigma = *sigma
		}
		if *step > 0 {
			cfg.Model.Plan.Step = *step
		}
		tb := report.New("Collision-free chiplet yields (Fig. 8b)", "chiplet", "yield")
		for _, r := range yield.ChipletYields(cfg) {
			tb.Add(r.Qubits, report.F(r.Fraction(), 4))
		}
		emit(tb, *csv)
		return
	}

	steps := []float64{0.04, 0.05, 0.06, 0.07}
	if *step > 0 {
		steps = []float64{*step}
	}
	sigmas := []float64{fab.SigmaAsFabricated, fab.SigmaLaserTuned, fab.SigmaScalingGoal}
	if *sigma > 0 {
		sigmas = []float64{*sigma}
	}
	sizes := yield.SizeLadder(*maxQ)
	cells := yield.Sweep(steps, sigmas, sizes, cfg)

	headers := []string{"step_GHz", "sigma_GHz", "qubits", "yield"}
	if *analytic {
		headers = append(headers, "analytic")
	}
	tb := report.New(
		fmt.Sprintf("Collision-free yield vs qubits (Fig. 4; batch %d)", *batch),
		headers...)
	for _, c := range cells {
		for _, p := range c.Points {
			row := []interface{}{
				report.F(c.Step, 3), report.F(c.Sigma, 4), p.Qubits, report.F(p.Yield, 4),
			}
			if *analytic {
				dev := topo.MonolithicDevice(topo.MonolithicSpec(p.Qubits))
				plan := topo.FreqPlan{Base: 5.0, Step: c.Step}
				row = append(row, report.F(
					analyticpkg.DeviceYield(dev, plan, c.Sigma, cfg.Params), 4))
			}
			tb.Add(row...)
		}
	}
	emit(tb, *csv)

	// Summarise the optimum step at each precision for quick reading.
	best := report.New("Optimal frequency step per precision (100-qubit device)",
		"sigma_GHz", "best_step_GHz", "yield")
	for _, s := range sigmas {
		bestStep, bestY := 0.0, -1.0
		for _, c := range cells {
			if c.Sigma != s {
				continue
			}
			for _, p := range c.Points {
				if p.Qubits >= 95 && p.Qubits <= 110 && p.Yield > bestY {
					bestY, bestStep = p.Yield, c.Step
				}
			}
		}
		if bestY >= 0 {
			best.Add(report.F(s, 4), report.F(bestStep, 3), report.F(bestY, 4))
		}
	}
	fmt.Println()
	emit(best, *csv)
}

func emit(tb *report.Table, csv bool) {
	var err error
	if csv {
		err = tb.WriteCSV(os.Stdout)
	} else {
		err = tb.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "yieldsim:", err)
		os.Exit(1)
	}
}
