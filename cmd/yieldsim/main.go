// Command yieldsim runs the collision-free yield Monte Carlo simulation
// of paper Section IV-B / Fig. 4: heavy-hex devices fabricated with
// per-qubit frequency noise, evaluated against the Table I collision
// criteria.
//
// Usage examples:
//
//	yieldsim                                # Fig. 4 sweep at defaults
//	yieldsim -sigma 0.014 -step 0.06 -max 500
//	yieldsim -scenario relaxed-thresholds   # simulate a non-paper device scenario
//	yieldsim -chiplets                      # catalog chiplet yields
//	yieldsim -workers 8                     # pin the worker-pool size
//	yieldsim -precision 0.01                # adaptive: stop at 1% CI half-width
//	yieldsim -scenario tight-thresholds -sampling importance -relprecision 0.2
//	                                        # rare-event mode: weighted estimator, +-20% relative CI
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	analyticpkg "chipletqc/internal/analytic"
	"chipletqc/internal/fab"
	"chipletqc/internal/report"
	"chipletqc/internal/scenario"
	"chipletqc/internal/topo"
	"chipletqc/internal/yield"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "yieldsim:", err)
		os.Exit(1)
	}
}

// errUsage marks argument errors the FlagSet has already reported to
// the error stream; main exits 2 without repeating them.
var errUsage = errors.New("usage error")

// run executes the tool against args, writing reports to out. It is the
// testable core of the binary: flag errors and report failures surface
// as returned errors instead of process exits.
func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("yieldsim", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		scen      = fs.String("scenario", scenario.PaperName, "device scenario to simulate (see `figures -scenarios`)")
		batch     = fs.Int("batch", 1000, "devices per Monte Carlo batch")
		sigma     = fs.Float64("sigma", 0, "fabrication precision in GHz (0 = sweep the paper's three values)")
		step      = fs.Float64("step", 0, "frequency plan step in GHz (0 = sweep 0.04-0.07)")
		maxQ      = fs.Int("max", 1000, "largest device size in qubits")
		seed      = fs.Int64("seed", 1, "RNG seed")
		workers   = fs.Int("workers", 0, "parallel workers (0 = all CPU cores; results identical either way)")
		precision = fs.Float64("precision", 0, "adaptive mode: stop each simulation once the yield's 95% CI half-width reaches this (0 = the scenario's policy; negative forces fixed batch)")
		maxTrials = fs.Int("maxtrials", 0, "adaptive mode trial budget (0 = the scenario's policy, then batch; negative resets)")
		relPrec   = fs.Float64("relprecision", 0, "adaptive mode relative target: stop once the CI half-width reaches this fraction of the yield (0 = the scenario's policy; negative disables)")
		smpl      = fs.String("sampling", "", "yield estimator: plain, stratified, or importance (\"\" = the scenario's policy; none = historical inline path)")
		chiplets  = fs.Bool("chiplets", false, "report catalog chiplet yields instead of the size sweep")
		analytic  = fs.Bool("analytic", false, "add the closed-form yield estimate next to Monte Carlo")
		csv       = fs.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	scn, err := scenario.Lookup(*scen)
	if err != nil {
		return err
	}
	cfg := scn.YieldConfig(*batch, *seed)
	cfg.Workers = *workers
	// 0 inherits the scenario's trial policy; negative forces fixed-batch.
	cfg.ApplyTrialPolicyOverrides(*precision, *maxTrials)
	cfg.ApplySamplingOverrides(*smpl, *relPrec)
	if err := cfg.Sampling.Validate(); err != nil {
		return err
	}

	if *chiplets {
		if *sigma > 0 {
			cfg.Model.Sigma = *sigma
		}
		if *step > 0 {
			cfg.Model.Plan.Step = *step
		}
		tb := report.New("Collision-free chiplet yields (Fig. 8b)",
			"chiplet", "yield", "trials", "ci_lo", "ci_hi")
		chipRes, err := yield.ChipletYields(ctx, cfg)
		if err != nil {
			return err
		}
		for _, r := range chipRes {
			tb.Add(r.Qubits, report.F(r.Fraction(), 4), r.Batch,
				report.F(r.CILo, 4), report.F(r.CIHi, 4))
		}
		return emit(tb, out, *csv)
	}

	steps := []float64{0.04, 0.05, 0.06, 0.07}
	if *step > 0 {
		steps = []float64{*step}
	}
	sigmas := []float64{fab.SigmaAsFabricated, fab.SigmaLaserTuned, fab.SigmaScalingGoal}
	if *sigma > 0 {
		sigmas = []float64{*sigma}
	}
	sizes := yield.SizeLadder(*maxQ)
	cells, err := yield.Sweep(ctx, steps, sigmas, sizes, cfg)
	if err != nil {
		return err
	}

	headers := []string{"step_GHz", "sigma_GHz", "qubits", "yield", "trials", "ci_lo", "ci_hi"}
	if *analytic {
		headers = append(headers, "analytic")
	}
	tb := report.New(
		fmt.Sprintf("Collision-free yield vs qubits (Fig. 4; batch %d)", *batch),
		headers...)
	for _, c := range cells {
		for _, p := range c.Points {
			row := []interface{}{
				report.F(c.Step, 3), report.F(c.Sigma, 4), p.Qubits, report.F(p.Yield, 4),
				p.Trials, report.F(p.CILo, 4), report.F(p.CIHi, 4),
			}
			if *analytic {
				dev := topo.MonolithicDevice(topo.MonolithicSpec(p.Qubits))
				plan := topo.FreqPlan{Base: 5.0, Step: c.Step}
				row = append(row, report.F(
					analyticpkg.DeviceYield(dev, plan, c.Sigma, cfg.Params), 4))
			}
			tb.Add(row...)
		}
	}
	if err := emit(tb, out, *csv); err != nil {
		return err
	}

	// Summarise the optimum step at each precision for quick reading.
	best := report.New("Optimal frequency step per precision (100-qubit device)",
		"sigma_GHz", "best_step_GHz", "yield")
	for _, s := range sigmas {
		bestStep, bestY := 0.0, -1.0
		for _, c := range cells {
			if c.Sigma != s {
				continue
			}
			for _, p := range c.Points {
				if p.Qubits >= 95 && p.Qubits <= 110 && p.Yield > bestY {
					bestY, bestStep = p.Yield, c.Step
				}
			}
		}
		if bestY >= 0 {
			best.Add(report.F(s, 4), report.F(bestStep, 3), report.F(bestY, 4))
		}
	}
	fmt.Fprintln(out)
	return emit(best, out, *csv)
}

func emit(tb *report.Table, out io.Writer, csv bool) error {
	if csv {
		return tb.WriteCSV(out)
	}
	return tb.WriteText(out)
}
