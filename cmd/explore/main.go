// Command explore sweeps a generated design-space grid — topology
// families crossed with fabrication-precision, collision-threshold,
// and link-error axes — through the campaign engine and reports the
// Pareto frontier of yield versus fabrication spread versus device
// size.
//
// The grid expands to one generated scenario per cell (internal/
// generate), each registered under a canonical name like
// "gen/hex-3x3-q16/sigma0.004" and evaluated by the genyield
// experiment. Cells run through campaign.Run against the artifact
// store, so explorer runs are resumable, shardable, and cached exactly
// like preset campaigns: a repeated run executes nothing, and shards
// pointed at one store together produce the identical frontier.
//
// Usage:
//
//	explore -topos hex-3x3-q16,square-3x3-q16 -sigmas 0.002,0.004 -store artifacts
//	explore -grid "topos=hex-2x2-q16;sigmas=0.004,0.008;thresholds=0.5,1" -store artifacts
//	explore ... -quick                  # smoke-scale Monte Carlo batches
//	explore ... -list                   # dry run: cells + store hit/miss
//	explore ... -shard 0/2 & explore ... -shard 1/2   # split one grid
//	explore ... -json > frontier.json   # machine face: byte-stable frontier JSON
//	explore ... -addr :8080             # run cells on a daemon started with
//	                                    # campaign -serve -generate <same grid>
//
// The frontier (stdout) contains only deterministic fields — no wall
// times, no executed/cached counters — so its JSON is byte-identical
// across reruns and shardings of the same grid, seed, and scale. The
// run summary ("explore: N cells, X executed, Y cached ...") goes to
// the error stream.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"chipletqc/internal/campaign"
	"chipletqc/internal/daemon"
	"chipletqc/internal/experiment"
	"chipletqc/internal/generate"
	"chipletqc/internal/report"
	"chipletqc/internal/scenario"
	"chipletqc/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "explore:", strings.TrimPrefix(err.Error(), "explore: "))
		os.Exit(1)
	}
}

// errUsage marks argument errors the FlagSet has already reported to
// the error stream; main exits 2 without repeating them.
var errUsage = errors.New("usage error")

// run executes the explorer against args, writing the frontier to out
// and the run summary to errw. It is the testable core of the binary.
func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		grid       = fs.String("grid", "", "compact grid spec `topos=...;sigmas=...;thresholds=...;links=...;base=...` (alternative to the axis flags)")
		topos      = fs.String("topos", "", "comma-separated topology specs, e.g. hex-3x3-q16,heavy-hex-2x2-q20,stack3d-2x2x3-q9")
		sigmas     = fs.String("sigmas", "", "comma-separated fab sigma values in GHz (default: the base scenario's)")
		thresholds = fs.String("thresholds", "", "comma-separated Table I collision-threshold scale factors (default: 1)")
		links      = fs.String("links", "", "comma-separated mean inter-chip link infidelities (default: the base scenario's link model)")
		base       = fs.String("base", scenario.PaperName, "base scenario the grid perturbs")
		storeDir   = fs.String("store", "explore-store", "artifact store directory; empty disables persistence")
		resume     = fs.Bool("resume", true, "serve cells already in the store instead of re-simulating; -resume=false forces re-execution")
		shardSpec  = fs.String("shard", "", "run only shard i of n of the cell grid, e.g. 0/2 (default: everything)")
		quick      = fs.Bool("quick", false, "reduced Monte Carlo batches (smoke scale)")
		seed       = fs.Int64("seed", 1, "base RNG seed for every cell")
		workers    = fs.Int("workers", 0, "total worker budget across cells (0 = all CPU cores; results identical either way)")
		list       = fs.Bool("list", false, "print the expanded cell grid with store hit/miss status and exit")
		jsonOut    = fs.Bool("json", false, "write the frontier as JSON to stdout instead of a table")
		progress   = fs.Bool("progress", false, "stream per-cell events to the error stream")
		addr       = fs.String("addr", "", "daemon `address`: run cells on a campaign daemon instead of locally (it must have been started with the same -generate grid)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	baseName, axes, err := parseGrid(*grid, *topos, *sigmas, *thresholds, *links, *base, fs, errw)
	if err != nil {
		return err
	}
	baseScn, err := scenario.Lookup(baseName)
	if err != nil {
		return err
	}
	gens, err := generate.Scenarios(baseScn, axes)
	if err != nil {
		return err
	}
	names, err := generate.Ensure(gens)
	if err != nil {
		return err
	}
	byName := make(map[string]generate.Gen, len(gens))
	for _, g := range gens {
		byName[g.Scenario.Name] = g
	}

	shard, err := campaign.ParseShard(*shardSpec)
	if err != nil {
		return err
	}
	plan := campaign.Plan{
		Experiments: []string{experiment.GenYieldName},
		Scenarios:   names,
		Seed:        *seed,
		Quick:       *quick,
	}
	cells, err := campaign.Expand(plan)
	if err != nil {
		return err
	}

	if *addr != "" {
		return runDaemon(ctx, daemonArgs{
			addr:  *addr,
			plan:  plan,
			force: !*resume,
			cells: cells,
			gens:  byName,
			json:  *jsonOut,
		}, out, errw)
	}

	var st store.Store
	if *storeDir != "" {
		fsStore, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		defer fsStore.Close()
		st = fsStore
	}

	if *list {
		return listCells(cells, shard, st, out)
	}

	opts := campaign.Options{
		Store:   st,
		Force:   !*resume,
		Workers: *workers,
		Shard:   shard,
	}
	if *progress {
		opts.Progress = func(ev campaign.Event) {
			fmt.Fprintf(errw, "%-8s %s\n", ev.Phase, ev.Cell.ID())
		}
	}
	rep, err := campaign.Run(ctx, plan, opts)
	if err != nil {
		return err
	}

	// Frontier assembly reads every grid cell back — including cells
	// another shard ran — so a complete store always yields the full,
	// shard-independent frontier.
	fromRun := make(map[string]experiment.Artifact, len(rep.Cells))
	for _, r := range rep.Cells {
		fromRun[r.Cell.Fingerprint] = r.Artifact
	}
	var points []generate.Point
	missing := 0
	for _, c := range cells {
		a, ok := fromRun[c.Fingerprint]
		if !ok && st != nil {
			a, ok, err = st.Get(c.Experiment, c.Fingerprint)
			if err != nil {
				return err
			}
		}
		if !ok {
			missing++
			continue
		}
		p, err := generate.PointFromArtifact(byName[c.Scenario], a)
		if err != nil {
			return err
		}
		points = append(points, p)
	}
	pareto := generate.MarkPareto(points)

	where := "no store"
	if st != nil {
		where = "store " + *storeDir
	}
	shardNote := ""
	if s := rep.Shard; s != "" {
		shardNote = fmt.Sprintf(", shard %s", s)
	}
	missingNote := ""
	if missing > 0 {
		missingNote = fmt.Sprintf(", %d cells awaiting other shards", missing)
	}
	fmt.Fprintf(errw, "explore: %d-cell grid, %d executed, %d cached, %d frontier points (%s%s%s)\n",
		rep.GridSize, rep.Executed, rep.Cached, pareto, where, shardNote, missingNote)

	return writeFrontier(out, plan, points, pareto, *jsonOut)
}

// parseGrid resolves the grid flags into (base scenario name, axes):
// either the compact -grid spec or the individual axis flags, never
// both.
func parseGrid(grid, topos, sigmas, thresholds, links, base string, fs *flag.FlagSet, errw io.Writer) (string, generate.Axes, error) {
	if grid != "" {
		axisSet := false
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "topos", "sigmas", "thresholds", "links", "base":
				axisSet = true
			}
		})
		if axisSet {
			fmt.Fprintln(errw, "explore: -grid already carries the axes; drop -topos/-sigmas/-thresholds/-links/-base")
			return "", generate.Axes{}, errUsage
		}
		return generate.ParseAxesSpec(grid)
	}
	if topos == "" {
		fmt.Fprintln(errw, "explore: no grid; set -topos (e.g. -topos hex-3x3-q16) or -grid")
		return "", generate.Axes{}, errUsage
	}
	var spec strings.Builder
	fmt.Fprintf(&spec, "topos=%s", topos)
	for _, axis := range []struct{ key, val string }{
		{"sigmas", sigmas}, {"thresholds", thresholds}, {"links", links},
	} {
		if axis.val != "" {
			fmt.Fprintf(&spec, ";%s=%s", axis.key, axis.val)
		}
	}
	fmt.Fprintf(&spec, ";base=%s", base)
	return generate.ParseAxesSpec(spec.String())
}

// daemonArgs collects the client-mode parameters.
type daemonArgs struct {
	addr  string
	plan  campaign.Plan
	force bool
	cells []campaign.Cell
	gens  map[string]generate.Gen
	json  bool
}

// runDaemon submits the plan to a live campaign daemon, waits for the
// job, and assembles the frontier from the daemon's store. The daemon
// resolves scenario names against its own registry, so it must have
// been started with the same generator grid (campaign -serve
// -generate ...).
func runDaemon(ctx context.Context, a daemonArgs, out, errw io.Writer) error {
	client := daemon.NewClient(a.addr)
	job, err := client.Submit(ctx, a.plan, a.force)
	if err != nil {
		return err
	}
	status, err := client.Watch(ctx, job.ID, nil)
	if err != nil {
		return err
	}
	if status.Error != "" {
		return fmt.Errorf("explore: daemon job %s failed: %s (a daemon serving generated grids needs campaign -serve -generate)", status.ID, status.Error)
	}
	var points []generate.Point
	for _, c := range a.cells {
		art, ok, err := client.Artifact(ctx, c.Experiment, c.Fingerprint)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("explore: daemon finished job %s but holds no artifact for cell %s", status.ID, c.ID())
		}
		p, err := generate.PointFromArtifact(a.gens[c.Scenario], art)
		if err != nil {
			return err
		}
		points = append(points, p)
	}
	pareto := generate.MarkPareto(points)
	fmt.Fprintf(errw, "explore: %d-cell grid, %d executed, %d cached, %d frontier points (daemon %s, job %s)\n",
		status.GridSize, status.Executed, status.Cached, pareto, a.addr, status.ID)
	return writeFrontier(out, a.plan, points, pareto, a.json)
}

// frontier is the machine face of the explorer: grid identity plus
// every evaluated point. All fields are deterministic for a given
// grid, seed, and scale, so the JSON is byte-stable across reruns and
// shardings.
type frontier struct {
	Experiment   string           `json:"experiment"`
	Seed         int64            `json:"seed"`
	Quick        bool             `json:"quick"`
	GridSize     int              `json:"grid_size"`
	ParetoPoints int              `json:"pareto_points"`
	Points       []generate.Point `json:"points"`
}

// writeFrontier renders the evaluated points: indented JSON with
// -json, an aligned table otherwise. Points stay in grid order.
func writeFrontier(out io.Writer, plan campaign.Plan, points []generate.Point, pareto int, asJSON bool) error {
	if asJSON {
		f := frontier{
			Experiment:   experiment.GenYieldName,
			Seed:         plan.Seed,
			Quick:        plan.Quick,
			GridSize:     len(plan.Scenarios),
			ParetoPoints: pareto,
			Points:       points,
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(f)
	}
	tb := report.New("Design-space frontier: yield vs fab sigma vs device size",
		"SCENARIO", "FAMILY", "QUBITS", "CHIPS", "LINKS", "SIGMA", "YIELD", "CI95", "TRIALS", "ESTIMATOR", "PARETO")
	for _, p := range points {
		mark := ""
		if p.Pareto {
			mark = "*"
		}
		tb.Add(p.Scenario, p.Spec.Family, p.Qubits, p.Chips, p.Links,
			fmt.Sprintf("%g", p.Sigma), report.F(p.Yield, 6),
			fmt.Sprintf("[%s, %s]", report.F(p.CILo, 6), report.F(p.CIHi, 6)),
			p.Trials, p.Estimator, mark)
	}
	return tb.WriteText(out)
}

// listCells renders the dry-run grid view: every cell of this shard
// with its store key and hit/miss status.
func listCells(cells []campaign.Cell, shard campaign.Shard, st store.Store, out io.Writer) error {
	if err := shard.Validate(); err != nil {
		return err
	}
	mine := shard.Filter(cells)
	sort.Slice(mine, func(i, j int) bool { return mine[i].Index < mine[j].Index })
	fmt.Fprintf(out, "%-5s %-42s %-30s %s\n", "IDX", "SCENARIO", "KEY", "STATUS")
	hits := 0
	for _, c := range mine {
		status := "miss"
		if st != nil && st.Has(c.Experiment, c.Fingerprint) {
			status = "hit"
			hits++
		}
		fmt.Fprintf(out, "%-5d %-42s %-30s %s\n", c.Index, c.Scenario, c.Key(), status)
	}
	fmt.Fprintf(out, "%d cells (grid %d), %d store hits\n", len(mine), len(cells), hits)
	return nil
}
