package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"chipletqc/internal/daemon"
	"chipletqc/internal/store"
)

// gridArgs is the test grid: 3 topologies (2 planar families plus a
// larger hex) x 2 sigmas x 2 threshold scales = 12 cells, small
// devices so quick scale stays fast.
func gridArgs(storeDir string, extra ...string) []string {
	args := []string{
		"-quick", "-seed", "7", "-store", storeDir,
		"-topos", "hex-1x2-q6,square-1x2-q6,hex-2x2-q6",
		"-sigmas", "0.004,0.008",
		"-thresholds", "0.5,1",
	}
	return append(args, extra...)
}

// frontierDoc mirrors the JSON the explorer emits, loosely: points stay
// raw maps so the test asserts on the wire names, not on Go structs.
type frontierDoc struct {
	Experiment   string           `json:"experiment"`
	GridSize     int              `json:"grid_size"`
	ParetoPoints int              `json:"pareto_points"`
	Points       []map[string]any `json:"points"`
}

func runExplore(t *testing.T, args []string) (stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	if err := run(context.Background(), args, &out, &errw); err != nil {
		t.Fatalf("explore %v: %v\nstderr:\n%s", args, err, errw.String())
	}
	return out.String(), errw.String()
}

func parseFrontier(t *testing.T, raw string) frontierDoc {
	t.Helper()
	var f frontierDoc
	if err := json.Unmarshal([]byte(raw), &f); err != nil {
		t.Fatalf("frontier JSON does not parse: %v\n%s", err, raw)
	}
	return f
}

func TestExploreGridRunsAndCaches(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	out, errw := runExplore(t, gridArgs(dir, "-json"))
	if !strings.Contains(errw, "12-cell grid, 12 executed, 0 cached") {
		t.Errorf("first run summary = %q, want 12 executed", strings.TrimSpace(errw))
	}
	f := parseFrontier(t, out)
	if f.Experiment != "genyield" || f.GridSize != 12 || len(f.Points) != 12 {
		t.Fatalf("frontier identity off: experiment=%q grid=%d points=%d",
			f.Experiment, f.GridSize, len(f.Points))
	}
	if f.ParetoPoints < 1 {
		t.Fatal("no Pareto-optimal point on a 12-cell grid")
	}
	marked := 0
	for _, p := range f.Points {
		if p["pareto"] == true {
			marked++
		}
		if p["config_fingerprint"] == "" || p["scenario"] == "" {
			t.Errorf("point lacks provenance: %v", p)
		}
	}
	if marked != f.ParetoPoints {
		t.Errorf("pareto_points says %d, %d points are marked", f.ParetoPoints, marked)
	}

	// An immediate re-run serves every cell from the store and emits
	// byte-identical frontier JSON.
	out2, errw2 := runExplore(t, gridArgs(dir, "-json"))
	if !strings.Contains(errw2, "12-cell grid, 0 executed, 12 cached") {
		t.Errorf("re-run summary = %q, want 0 executed, 12 cached", strings.TrimSpace(errw2))
	}
	if out2 != out {
		t.Error("re-run frontier JSON differs from the first run's")
	}
}

func TestExploreShardsReproduceTheFrontier(t *testing.T) {
	whole := filepath.Join(t.TempDir(), "whole")
	unsharded, _ := runExplore(t, gridArgs(whole, "-json"))

	sharded := filepath.Join(t.TempDir(), "sharded")
	half, errw := runExplore(t, gridArgs(sharded, "-json", "-shard", "0/2"))
	if !strings.Contains(errw, "6 executed") || !strings.Contains(errw, "awaiting other shards") {
		t.Errorf("shard 0/2 summary = %q, want 6 executed and a missing-cells note", strings.TrimSpace(errw))
	}
	if f := parseFrontier(t, half); len(f.Points) != 6 {
		t.Errorf("shard 0/2 alone evaluated %d points, want its 6", len(f.Points))
	}
	full, errw2 := runExplore(t, gridArgs(sharded, "-json", "-shard", "1/2"))
	if !strings.Contains(errw2, "6 executed") {
		t.Errorf("shard 1/2 summary = %q, want 6 executed", strings.TrimSpace(errw2))
	}
	if full != unsharded {
		t.Error("shard 0/2 + 1/2 frontier is not byte-identical to the unsharded run's")
	}
}

func TestExploreAgainstDaemon(t *testing.T) {
	st := store.OpenMem()
	srv := daemon.New(daemon.Options{Store: st})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Drain()

	args := []string{
		"-quick", "-seed", "7", "-addr", hs.URL,
		"-topos", "hex-1x2-q6,square-1x2-q6",
		"-sigmas", "0.004,0.008",
	}
	var out, errw bytes.Buffer
	if err := run(context.Background(), args, &out, &errw); err != nil {
		t.Fatalf("explore against daemon: %v\nstderr:\n%s", err, errw.String())
	}
	if !strings.Contains(errw.String(), "daemon") {
		t.Errorf("summary %q does not name the daemon", strings.TrimSpace(errw.String()))
	}
	if !strings.Contains(out.String(), "Design-space frontier") {
		t.Errorf("daemon run did not render the frontier table:\n%s", out.String())
	}
}

func TestExploreListShowsHitsAfterRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	out, _ := runExplore(t, gridArgs(dir, "-list"))
	if !strings.Contains(out, "12 cells (grid 12), 0 store hits") {
		t.Errorf("cold -list = %q, want 0 hits", lastLine(out))
	}
	runExplore(t, gridArgs(dir))
	out, _ = runExplore(t, gridArgs(dir, "-list"))
	if !strings.Contains(out, "12 cells (grid 12), 12 store hits") {
		t.Errorf("warm -list = %q, want 12 hits", lastLine(out))
	}
}

func TestExploreUsageErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"no-grid", []string{"-quick"}},
		{"grid-and-axis-flags", []string{"-grid", "topos=hex-1x2-q6", "-sigmas", "0.004"}},
		{"bad-topo", []string{"-topos", "moebius-2x2-q6"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			err := run(context.Background(), tc.args, &out, &errw)
			if err == nil {
				t.Fatalf("explore %v succeeded, want an error", tc.args)
			}
		})
	}
}

func lastLine(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	return lines[len(lines)-1]
}
