package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chipletqc/internal/experiment"
)

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, name := range []string{"fig1", "fig4", "fig8", "fig9", "fig10", "table2", "eq1"} {
		if !strings.Contains(got, name) {
			t.Errorf("-list output missing %q:\n%s", name, got)
		}
	}
}

func TestRunOnlyWithJSONArtifact(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	err := run(context.Background(),
		[]string{"-quick", "-only", "fig2,eq1", "-json", "-out", dir}, &out, &errw)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	for _, name := range []string{"fig2", "eq1"} {
		if _, err := os.Stat(filepath.Join(dir, name+".txt")); err != nil {
			t.Errorf("missing text artifact: %v", err)
		}
		data, err := os.ReadFile(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatalf("missing JSON artifact: %v", err)
		}
		var a experiment.Artifact
		if err := json.Unmarshal(data, &a); err != nil {
			t.Fatalf("%s.json is not a valid Artifact: %v", name, err)
		}
		if a.Name != name || a.Fingerprint == "" || a.Payload == nil {
			t.Errorf("%s.json incomplete: %+v", name, a)
		}
	}
	// No stray artifacts beyond the selected ones.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 4 {
		t.Errorf("expected 4 artifact files, found %d", len(entries))
	}
}

func TestRunScenarioList(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(context.Background(), []string{"-scenarios"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, name := range []string{"paper", "future-fab", "improved-links", "relaxed-thresholds", "FINGERPRINT"} {
		if !strings.Contains(got, name) {
			t.Errorf("-scenarios output missing %q:\n%s", name, got)
		}
	}
}

func TestRunUnderScenarioRecordsIt(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	err := run(context.Background(),
		[]string{"-quick", "-scenario", "future-fab", "-only", "eq1", "-json", "-out", dir}, &out, &errw)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "eq1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var a experiment.Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}
	if a.Scenario != "future-fab" || a.ScenarioFingerprint == "" {
		t.Errorf("artifact does not record the scenario: %+v", a)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	var out, errw bytes.Buffer
	err := run(context.Background(), []string{"-scenario", "warp-core"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") ||
		!strings.Contains(err.Error(), "paper") {
		t.Errorf("err = %v, want unknown-scenario error listing known names", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	err := run(context.Background(), []string{"-only", "fig99"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v, want unknown-experiment error", err)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errw bytes.Buffer
	err := run(ctx, []string{"-quick", "-only", "fig8", "-out", t.TempDir()}, &out, &errw)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(context.Background(), []string{"-nope"}, &out, &errw); !errors.Is(err, errUsage) {
		t.Errorf("err = %v, want errUsage", err)
	}
}
