// Command figures runs experiments from the registry — by default every
// figure and table of the paper's evaluation section — and writes one
// artifact per experiment into an output directory (default ./results):
// a stable text rendering (<name>.txt) and, with -json, the full
// machine-readable Artifact record (<name>.json).
//
// Usage:
//
//	figures -list                    # enumerate registered experiments
//	figures -scenarios               # enumerate registered device scenarios
//	figures                          # paper-scale run of everything (minutes)
//	figures -quick                   # reduced batches (seconds, for smoke testing)
//	figures -scenario future-fab -only fig4,fig8  # run under a non-paper device world
//	figures -only fig8,table2 -json  # a subset, with Artifact JSON records
//	figures -out DIR                 # choose the output directory
//	figures -workers 8               # pin the worker-pool size
//	figures -progress                # stream per-experiment trial counts to stderr
//
// Interrupting the process (SIGINT/SIGTERM) cancels the in-flight
// experiment promptly via its context.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"chipletqc/internal/eval"
	"chipletqc/internal/experiment"
	"chipletqc/internal/runner"
	"chipletqc/internal/scenario"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// errUsage marks argument errors the FlagSet has already reported to
// the error stream; main exits 2 without repeating them.
var errUsage = errors.New("usage error")

// run executes the tool against args, writing progress to out. It is the
// testable core of the binary.
func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		outDir    = fs.String("out", "results", "output directory")
		quick     = fs.Bool("quick", false, "reduced Monte Carlo batches")
		scen      = fs.String("scenario", scenario.PaperName, "device scenario to run under (see -scenarios)")
		scenList  = fs.Bool("scenarios", false, "list registered device scenarios and exit")
		seed      = fs.Int64("seed", 1, "RNG seed")
		workers   = fs.Int("workers", 0, "parallel workers (0 = all CPU cores; results identical either way)")
		precision = fs.Float64("precision", 0, "adaptive mode: stop yield simulations once their 95% CI half-width reaches this (0 = the scenario's policy; negative forces fixed batch)")
		maxTrials = fs.Int("maxtrials", 0, "adaptive mode trial budget per simulation (0 = the scenario's policy, then batch size; negative resets)")
		relPrec   = fs.Float64("relprecision", 0, "adaptive mode relative target: stop once the CI half-width reaches this fraction of the yield (0 = the scenario's policy; negative disables)")
		smpl      = fs.String("sampling", "", "yield estimator: plain, stratified, or importance (\"\" = the scenario's policy; none = historical inline path)")
		list      = fs.Bool("list", false, "list registered experiments and exit")
		only      = fs.String("only", "", "comma-separated experiment names to run (default: all)")
		jsonOut   = fs.Bool("json", false, "additionally write the Artifact JSON record per experiment")
		progress  = fs.Bool("progress", false, "stream per-experiment trial counts to the error stream")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	if *list {
		fmt.Fprintf(out, "%-12s %s\n", "NAME", "DESCRIPTION")
		for _, e := range experiment.All() {
			fmt.Fprintf(out, "%-12s %s\n", e.Name(), e.Describe())
		}
		return nil
	}
	if *scenList {
		fmt.Fprintf(out, "%-20s %-14s %s\n", "NAME", "FINGERPRINT", "DESCRIPTION")
		for _, s := range scenario.All() {
			fmt.Fprintf(out, "%-20s %-14s %s\n", s.Name, s.Fingerprint(), s.Description)
		}
		return nil
	}

	scn, err := scenario.Lookup(*scen)
	if err != nil {
		return err
	}
	cfg := eval.ConfigFor(scn, *seed)
	if *quick {
		cfg = eval.QuickConfigFor(scn, *seed)
		cfg.MaxQubits = 200
	}
	cfg.Workers = *workers
	// 0 inherits the scenario's trial policy; negative forces fixed-batch.
	cfg.ApplyTrialPolicyOverrides(*precision, *maxTrials)
	cfg.ApplySamplingOverrides(*smpl, *relPrec)
	if err := cfg.Sampling.Validate(); err != nil {
		return err
	}
	if *progress {
		cfg.Progress = progressPrinter(errw)
	}

	exps, err := selectExperiments(*only)
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for _, e := range exps {
		if err := runOne(ctx, e, cfg, *outDir, *jsonOut, out); err != nil {
			return err
		}
	}
	fmt.Fprintln(out, "all artifacts written to", *outDir)
	return nil
}

// selectExperiments resolves the -only list against the registry, or
// returns the full catalog when empty.
func selectExperiments(only string) ([]experiment.Experiment, error) {
	if only == "" {
		return experiment.All(), nil
	}
	var out []experiment.Experiment
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		e, ok := experiment.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (known: %s)",
				name, strings.Join(experiment.Names(), ", "))
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no experiments")
	}
	return out, nil
}

// runOne executes one experiment and writes its artifact files.
func runOne(ctx context.Context, e experiment.Experiment, cfg eval.Config, dir string, jsonOut bool, progress io.Writer) error {
	a, err := e.Run(ctx, cfg)
	if err != nil {
		return err
	}
	txtPath := filepath.Join(dir, a.Name+".txt")
	if err := writeFile(txtPath, a.WriteText); err != nil {
		return err
	}
	paths := txtPath
	if jsonOut {
		jsonPath := filepath.Join(dir, a.Name+".json")
		if err := writeFile(jsonPath, a.WriteJSON); err != nil {
			return err
		}
		paths += ", " + jsonPath
	}
	fmt.Fprintf(progress, "%-10s -> %s (%.1fs, %d trials)\n",
		a.Name, paths, a.WallSeconds, a.Trials)
	return nil
}

// writeFile creates path and streams render into it.
func writeFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := render(f); err != nil {
		return err
	}
	return f.Close()
}

// progressPrinter serialises concurrent progress events onto one
// stream, throttled per label so checkpoint-dense campaigns don't flood
// the terminal.
func progressPrinter(w io.Writer) func(runner.Event) {
	var mu sync.Mutex
	last := map[string]time.Time{}
	return func(e runner.Event) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if t, ok := last[e.Label]; ok && now.Sub(t) < 200*time.Millisecond && e.Done < e.Total {
			return
		}
		last[e.Label] = now
		fmt.Fprintf(w, "  %s: %d/%d\n", e.Label, e.Done, e.Total)
	}
}
