// Command figures regenerates every table and figure of the paper's
// evaluation section and writes one text file per artifact into an
// output directory (default ./results).
//
// Usage:
//
//	figures              # paper-scale run (minutes)
//	figures -quick       # reduced batches (seconds, for smoke testing)
//	figures -out DIR     # choose the output directory
//	figures -workers 8   # pin the worker-pool size
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"chipletqc/internal/eval"
	"chipletqc/internal/mcm"
	"chipletqc/internal/report"
	"chipletqc/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// errUsage marks argument errors the FlagSet has already reported to
// the error stream; main exits 2 without repeating them.
var errUsage = errors.New("usage error")

// run executes the tool against args, writing progress to out. It is the
// testable core of the binary.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		outDir    = fs.String("out", "results", "output directory")
		quick     = fs.Bool("quick", false, "reduced Monte Carlo batches")
		seed      = fs.Int64("seed", 1, "RNG seed")
		workers   = fs.Int("workers", 0, "parallel workers (0 = all CPU cores; results identical either way)")
		precision = fs.Float64("precision", 0, "adaptive mode: stop yield simulations once their 95% CI half-width reaches this (0 = fixed batch)")
		maxTrials = fs.Int("maxtrials", 0, "adaptive mode trial budget per simulation (0 = batch size)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	cfg := eval.DefaultConfig(*seed)
	cfg.Workers = *workers
	cfg.Precision = *precision
	cfg.MaxTrials = *maxTrials
	fig10Samples := 5
	fig4Max := 1000
	fig6Batch := 100000
	if *quick {
		cfg = eval.QuickConfig(*seed)
		cfg.Workers = *workers
		cfg.Precision = *precision
		cfg.MaxTrials = *maxTrials
		cfg.MaxQubits = 200
		fig10Samples = 2
		fig4Max = 200
		fig6Batch = 2000
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	type artifact struct {
		name string
		gen  func() (*report.Table, error)
	}
	var fig9StateOfArt []eval.Fig9Cell
	artifacts := []artifact{
		{"fig1", func() (*report.Table, error) {
			tb := report.New("Fig. 1: yield and mean infidelity vs module size",
				"qubits", "yield", "mean_two_qubit_infidelity")
			for _, r := range eval.Fig1(cfg) {
				tb.Add(r.Qubits, report.F(r.Yield, 4), report.F(r.EAvg, 5))
			}
			return tb, nil
		}},
		{"fig2", func() (*report.Table, error) {
			r := eval.Fig2(9, 4, 7)
			tb := report.New("Fig. 2: wafer output with 7 fatal defects per batch",
				"architecture", "dies", "good_devices")
			tb.Add("monolithic", r.MonoDies, r.MonoGood)
			tb.Add("chiplet (4 per monolithic die)", r.ChipletDies, r.ChipletGood)
			return tb, nil
		}},
		{"fig3b", func() (*report.Table, error) {
			tb := report.New("Fig. 3(b): CX infidelity box plots by processor size",
				"qubits", "min", "q1", "median", "q3", "max", "mean")
			for i, s := range eval.Fig3b(cfg) {
				tb.Add(eval.Fig3bSizes[i], report.F(s.Min, 5), report.F(s.Q1, 5),
					report.F(s.Median, 5), report.F(s.Q3, 5), report.F(s.Max, 5),
					report.F(s.Mean, 5))
			}
			return tb, nil
		}},
		{"fig4", func() (*report.Table, error) {
			tb := report.New("Fig. 4: collision-free yield vs qubits",
				"step_GHz", "sigma_GHz", "qubits", "yield", "trials", "ci_lo", "ci_hi")
			for _, c := range eval.Fig4(cfg, fig4Max) {
				for _, p := range c.Points {
					tb.Add(report.F(c.Step, 3), report.F(c.Sigma, 4), p.Qubits, report.F(p.Yield, 4),
						p.Trials, report.F(p.CILo, 4), report.F(p.CIHi, 4))
				}
			}
			return tb, nil
		}},
		{"fig6", func() (*report.Table, error) {
			res := eval.Fig6(cfg, fig6Batch, 7)
			tb := report.New(
				fmt.Sprintf("Fig. 6: MCM configurability (20q chiplets, batch %d, yield %.4f)",
					res.Batch, res.Yield),
				"dim", "chips", "log10_configurations", "max_assembled_mcms")
			for _, r := range res.Rows {
				tb.Add(fmt.Sprintf("%dx%d", r.Dim, r.Dim), r.Chips,
					report.F(r.Log10Configs, 1), r.MaxMCMs)
			}
			return tb, nil
		}},
		{"fig7", func() (*report.Table, error) {
			res := eval.Fig7(cfg)
			tb := report.New(
				fmt.Sprintf("Fig. 7: CX infidelity vs detuning (median %.4f, mean %.4f)",
					res.Median, res.Mean),
				"detuning_GHz", "avg_cx_infidelity")
			for _, p := range res.Points {
				tb.Add(report.F(p.Detuning, 4), report.F(p.Infidelity, 5))
			}
			return tb, nil
		}},
		{"fig8", func() (*report.Table, error) {
			res := eval.Fig8(cfg)
			tb := report.New("Fig. 8: yield vs qubits, MCM (nominal and 100x bond failure) vs monolithic",
				"chiplet", "dim", "qubits", "chiplet_yield", "mcm_yield", "mcm_yield_100x", "mono_yield",
				"mono_trials", "mono_ci_lo", "mono_ci_hi")
			for _, p := range res.Points {
				tb.Add(p.Grid.Spec.Qubits(), fmt.Sprintf("%dx%d", p.Grid.Rows, p.Grid.Cols),
					p.Qubits, report.F(p.ChipletYield, 4), report.F(p.MCMYield, 4),
					report.F(p.MCMYield100x, 4), report.F(p.MonoYield, 4),
					p.MonoTrials, report.F(p.MonoCILo, 4), report.F(p.MonoCIHi, 4))
			}
			tb.Add("", "", "", "", "", "", "", "", "", "")
			for _, cs := range topo.Catalog {
				if v, ok := res.Improvements[cs.Qubits]; ok {
					tb.Add(cs.Qubits, "avg-improvement", "", "", report.F(v, 2)+"x", "", "", "", "", "")
				} else {
					tb.Add(cs.Qubits, "avg-improvement", "", "", "inf (mono 0%)", "", "", "", "", "")
				}
			}
			return tb, nil
		}},
		{"fig9", func() (*report.Table, error) {
			res := eval.Fig9(cfg)
			fig9StateOfArt = res["state-of-art"]
			tb := report.New("Fig. 9: E_avg,MCM / E_avg,Mono heatmaps (square MCMs)",
				"link_quality", "chiplet", "dim", "qubits", "ratio")
			for _, name := range eval.Fig9Ratios {
				for _, c := range res[name] {
					ratio := "n/a (mono 0%)"
					if c.MonoAvailable && !math.IsNaN(c.Ratio) {
						ratio = report.F(c.Ratio, 4)
					}
					tb.Add(name, c.Grid.Spec.Qubits(),
						fmt.Sprintf("%dx%d", c.Grid.Rows, c.Grid.Cols), c.Qubits, ratio)
				}
			}
			return tb, nil
		}},
		{"fig10", func() (*report.Table, error) {
			grids := mcm.EnumerateGrids(cfg.MaxQubits)
			pts, err := eval.Fig10(cfg, grids, fig10Samples)
			if err != nil {
				return nil, err
			}
			tb := report.New("Fig. 10: benchmark fidelity ratio MCM/monolithic",
				"chiplet", "dim", "qubits", "bench", "log_ratio", "square", "note")
			for _, p := range pts {
				logS, note := report.F(p.LogRatio, 3), ""
				if p.MonoZero {
					logS, note = "+inf", "mono 0% yield (red X)"
				} else if math.IsNaN(p.LogRatio) {
					logS, note = "nan", "no MCM instances"
				}
				tb.Add(p.Grid.Spec.Qubits(), fmt.Sprintf("%dx%d", p.Grid.Rows, p.Grid.Cols),
					p.Qubits, p.Bench, logS, p.Square, note)
			}
			// The paper's closing Fig. 10(b) observation, quantified: rank
			// correlation between each square system's E_avg ratio and its
			// per-gate application advantage.
			if corr := eval.Fig10Correlation(fig9StateOfArt, pts); len(corr.Systems) >= 2 {
				tb.Add("", "", "", "", "", "", "")
				tb.Add("correlation", "spearman", report.F(corr.Spearman, 3),
					"pearson", report.F(corr.Pearson, 3),
					fmt.Sprintf("%d", len(corr.Systems)), "systems")
			}
			return tb, nil
		}},
		{"table2", func() (*report.Table, error) {
			rows, err := eval.Table2(cfg)
			if err != nil {
				return nil, err
			}
			tb := report.New("Table II: compiled benchmark details",
				"chiplet", "dim", "qubits", "bench", "1q", "2q", "2q_critical")
			for _, r := range rows {
				tb.Add(r.ChipletQubits, r.Dim, r.SystemQubits, r.Bench,
					r.Counts.OneQ, r.Counts.TwoQ, r.Counts.TwoQCritical)
			}
			return tb, nil
		}},
		{"eq1", func() (*report.Table, error) {
			r := eval.Eq1Example(cfg)
			tb := report.New("Eq. 1 / Section V-C: fabrication output example (B=1000, 100q systems)",
				"metric", "value")
			tb.Add("monolithic yield Ym", report.F(r.MonoYield, 4))
			tb.Add("chiplet yield Yc (10q)", report.F(r.ChipletYield, 4))
			tb.Add("monolithic devices", report.F(r.MonoDevices, 0))
			tb.Add("MCM devices (Eq. 1)", report.F(r.MCMDevices, 0))
			tb.Add("gain", report.F(r.Gain, 2)+"x")
			return tb, nil
		}},
	}

	for _, a := range artifacts {
		if err := writeArtifact(a.name, *outDir, out, a.gen); err != nil {
			return err
		}
	}
	fmt.Fprintln(out, "all artifacts written to", *outDir)
	return nil
}

// writeArtifact times one artifact generation and writes it to
// <dir>/<name>.txt.
func writeArtifact(name, dir string, progress io.Writer, gen func() (*report.Table, error)) error {
	start := time.Now()
	tb, err := gen()
	if err != nil {
		return err
	}
	path := filepath.Join(dir, name+".txt")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tb.WriteText(f); err != nil {
		return err
	}
	fmt.Fprintf(progress, "%-8s -> %s (%.1fs)\n", name, path, time.Since(start).Seconds())
	return nil
}
