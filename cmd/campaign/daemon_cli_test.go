package main

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chipletqc/internal/daemon"
)

// TestModeFlagConflicts pins the CLI's refusal to silently drop flags:
// every row is an invocation that used to parse and then ignore part
// of what the user asked for, and must now exit 2 naming the conflict.
func TestModeFlagConflicts(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
		want string // substring the usage error must contain
	}{
		{"gc-keep without gc", []string{"-store", dir, "-gc-keep", "5"}, "configure -gc"},
		{"gc-max-bytes without gc", []string{"-store", dir, "-gc-max-bytes", "1024"}, "configure -gc"},
		{"shard with verify", []string{"-store", dir, "-verify", "-shard", "0/2"}, "-shard"},
		{"resume with prune", []string{"-store", dir, "-prune", "-resume=false"}, "-resume"},
		{"shard with gc", []string{"-store", dir, "-gc", "-gc-keep", "5", "-shard", "0/2"}, "-shard"},
		{"progress with serve", []string{"-serve", "-progress"}, "-progress"},
		{"shard with submit", []string{"-submit", "-shard", "0/2"}, "-shard"},
		{"plan flags with status", []string{"-status", "-experiments", "fig2"}, "-experiments"},
		{"addr with plain campaign", []string{"-addr", ":9", "-quick", "-experiments", "fig2", "-store", ""}, "-addr"},
		{"client verb with admin verb", []string{"-submit", "-verify", "-store", dir}, "separately"},
		{"serve with client verb", []string{"-serve", "-submit"}, "-serve"},
		{"two client verbs", []string{"-submit", "-job", "job-000001"}, "exactly one client verb"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, errs, err := runArgs(t, context.Background(), tc.args...)
			if !errors.Is(err, errUsage) {
				t.Fatalf("err = %v, want errUsage", err)
			}
			if !strings.Contains(errs, tc.want) {
				t.Errorf("usage error does not name the conflict %q:\n%s", tc.want, errs)
			}
		})
	}
}

// TestPinKeepsItsCampaignFlags is the counter-case: -pin addresses the
// plan's (sharded) grid, so plan flags and -shard stay legal with it.
func TestPinKeepsItsCampaignFlags(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	out, errs, err := runArgs(t, context.Background(),
		"-store", dir, "-pin", "nightly", "-quick", "-experiments", "fig2", "-shard", "0/2")
	if err != nil {
		t.Fatalf("err = %v (stderr %q), want -pin to accept plan flags and -shard", err, errs)
	}
	if !strings.Contains(out, "pinned 0 of") {
		t.Errorf("pin output wrong:\n%s", out)
	}
}

// freeAddr reserves a loopback port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestServeSubmitWatchFetchShutdown drives the daemon through the CLI
// exactly as a user would: start -serve, submit a plan twice (second
// run fully cached), read a job, fetch an artifact by fingerprint,
// check status, and drain with -shutdown.
func TestServeSubmitWatchFetchShutdown(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	addr := freeAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	serveErr := make(chan error, 1)
	go func() {
		_, _, err := runArgs(t, ctx, "-serve", "-addr", addr, "-store", dir, "-workers", "2")
		serveErr <- err
	}()
	waitForDaemon(t, ctx, addr, serveErr)

	plan := []string{"-quick", "-experiments", "fig2,eq1", "-scenarios", "paper,future-fab", "-addr", addr}

	out, _, err := runArgs(t, ctx, append([]string{"-submit", "-watch"}, plan...)...)
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if !strings.Contains(out, "done, 4 cells, 4 executed, 0 cached") {
		t.Errorf("first submit status wrong:\n%s", out)
	}

	out, _, err = runArgs(t, ctx, append([]string{"-submit", "-watch", "-json"}, plan...)...)
	if err != nil {
		t.Fatalf("second submit: %v", err)
	}
	var st daemon.JobStatus
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("second submit did not print JSON: %v\n%s", err, out)
	}
	if st.Executed != 0 || st.Cached != 4 {
		t.Errorf("second submit executed %d cached %d, want 0/4", st.Executed, st.Cached)
	}
	if len(st.Cells) != 4 {
		t.Fatalf("status carries %d cells, want 4", len(st.Cells))
	}

	out, _, err = runArgs(t, ctx, "-job", st.ID, "-addr", addr)
	if err != nil {
		t.Fatalf("-job: %v", err)
	}
	if !strings.Contains(out, st.ID+": done") {
		t.Errorf("-job output wrong:\n%s", out)
	}

	cell := st.Cells[0]
	out, _, err = runArgs(t, ctx, "-fetch", cell.Experiment+"/"+cell.Fingerprint, "-addr", addr)
	if err != nil {
		t.Fatalf("-fetch: %v", err)
	}
	if !strings.Contains(out, cell.Fingerprint) {
		t.Errorf("-fetch output does not render the artifact (fingerprint missing):\n%s", out)
	}
	if _, _, err := runArgs(t, ctx, "-fetch", cell.Experiment+"/ffffffffffff", "-addr", addr); err == nil {
		t.Error("-fetch of a missing artifact succeeded")
	}

	out, _, err = runArgs(t, ctx, "-status", "-addr", addr)
	if err != nil {
		t.Fatalf("-status: %v", err)
	}
	if !strings.Contains(out, "2 done") || !strings.Contains(out, "store: 4 records") {
		t.Errorf("-status output wrong:\n%s", out)
	}

	if _, _, err := runArgs(t, ctx, "-shutdown", "-addr", addr); err != nil {
		t.Fatalf("-shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("-serve exited %v after -shutdown, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("-serve did not exit after -shutdown")
	}
}

// waitForDaemon polls -status until the daemon answers.
func waitForDaemon(t *testing.T, ctx context.Context, addr string, serveErr <-chan error) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-serveErr:
			t.Fatalf("-serve exited during startup: %v", err)
		default:
		}
		if _, _, err := runArgs(t, ctx, "-status", "-addr", addr); err == nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("daemon never answered -status")
}
