// Command campaign drives scenario×experiment sweeps as one job
// against a fingerprint-keyed artifact store: the cross product of
// -experiments and -scenarios expands to a deterministic cell grid,
// cells already present in the store are served without re-simulating,
// and everything executed is persisted — so an interrupted campaign
// resumes where it stopped, a repeated campaign costs nothing, and
// -shard splits one campaign across independent processes.
//
// Usage:
//
//	campaign -experiments fig4,fig8 -scenarios paper,future-fab -store artifacts
//	campaign -quick -store artifacts            # every experiment, paper scenario, smoke scale
//	campaign -experiments genyield -generate "topos=hex-3x3-q16;sigmas=0.002,0.004" -store artifacts
//	                                            # generated-scenario grid (see internal/generate, cmd/explore)
//	campaign ... -list                          # dry run: print the cell grid + hit/miss status
//	campaign ... -shard 0/2 & campaign ... -shard 1/2   # split one campaign
//	campaign ... -resume=false                  # force re-execution, overwriting stored cells
//	campaign ... -json                          # machine-readable report on stdout
//
// Store administration (each runs instead of a campaign; exactly one
// admin verb per invocation):
//
//	campaign -store artifacts -verify           # audit every record; exit 1 naming bad files
//	campaign -store artifacts -backup dir       # snapshot every record into dir
//	campaign -store artifacts -restore dir      # copy a snapshot's records back, healing bad ones
//	campaign -store artifacts -prune            # delete broken records, strays, stale temps
//	campaign -store artifacts -gc -gc-keep 100  # evict least-recently-read records over the cap
//	campaign -store artifacts -pin nightly      # protect this grid's records from -gc
//	campaign -store artifacts -unpin nightly    # release that protection
//
// Daemon mode keeps one store open behind an HTTP API, so many
// clients share its cache and its worker budget (-slots jobs run
// concurrently; further submissions queue FIFO):
//
//	campaign -serve -store artifacts -addr :8080        # run the daemon
//	campaign -serve -generate "topos=..." -addr :8080   # daemon that resolves a generated grid (cmd/explore -addr)
//	campaign -submit -quick -addr :8080                 # queue a plan, print the job handle
//	campaign -submit -watch -json -addr :8080           # queue, stream events, print final status
//	campaign -job job-000001 -addr :8080                # one job's status (+ -watch to stream)
//	campaign -fetch fig8/0a1b2c3d4e5f -addr :8080       # one stored artifact by key
//	campaign -status -addr :8080                        # daemon + queue + store status
//	campaign -shutdown -addr :8080                      # graceful drain (SIGTERM works too)
//
// Interrupting the process (SIGINT/SIGTERM) cancels the in-flight
// cells promptly; completed cells stay in the store and are skipped on
// the next invocation. A daemon drains on the same signals: running
// jobs cancel cleanly, their completed cells stay persisted, and
// queued jobs report interrupted.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"

	"chipletqc/internal/campaign"
	"chipletqc/internal/daemon"
	"chipletqc/internal/generate"
	"chipletqc/internal/scenario"
	"chipletqc/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		// The engine's errors already carry the package prefix.
		fmt.Fprintln(os.Stderr, "campaign:", strings.TrimPrefix(err.Error(), "campaign: "))
		os.Exit(1)
	}
}

// errUsage marks argument errors the FlagSet has already reported to
// the error stream; main exits 2 without repeating them.
var errUsage = errors.New("usage error")

// run executes the tool against args, writing the report to out. It is
// the testable core of the binary.
func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		experiments = fs.String("experiments", "", "comma-separated experiment names (default: every registered experiment)")
		scenarios   = fs.String("scenarios", "", "comma-separated device scenario names (default: paper)")
		genSpec     = fs.String("generate", "", "register a generated scenario grid `topos=...;sigmas=...;thresholds=...;links=...;base=...` and add its scenarios to the plan (with -serve: make the grid's names resolvable to submitted plans)")
		storeDir    = fs.String("store", "campaign-store", "artifact store directory; empty disables persistence")
		resume      = fs.Bool("resume", true, "serve cells already in the store instead of re-simulating; -resume=false forces re-execution")
		shardSpec   = fs.String("shard", "", "run only shard i of n of the cell grid, e.g. 0/2 (default: everything)")
		quick       = fs.Bool("quick", false, "reduced Monte Carlo batches (smoke scale)")
		seed        = fs.Int64("seed", 1, "base RNG seed for every cell")
		workers     = fs.Int("workers", 0, "total worker budget across cells (0 = all CPU cores; results identical either way)")
		precision   = fs.Float64("precision", 0, "adaptive mode: per-cell 95% CI half-width target (0 = each scenario's policy; negative forces fixed batch)")
		maxTrials   = fs.Int("maxtrials", 0, "adaptive mode trial budget per simulation (0 = each scenario's policy; negative resets)")
		relPrec     = fs.Float64("relprecision", 0, "adaptive mode relative target: per-cell CI half-width as a fraction of the yield (0 = each scenario's policy; negative disables)")
		smpl        = fs.String("sampling", "", "yield estimator for every cell: plain, stratified, or importance (\"\" = each scenario's policy; none = historical inline path)")
		list        = fs.Bool("list", false, "print the expanded cell grid with store hit/miss status and exit")
		jsonOut     = fs.Bool("json", false, "write the campaign report as JSON to stdout instead of text")
		progress    = fs.Bool("progress", false, "stream per-cell events to the error stream")

		// Store admin verbs: each runs instead of a campaign.
		verify     = fs.Bool("verify", false, "admin: audit every store record (decode + identity cross-check); exit 1 naming bad files")
		backupDir  = fs.String("backup", "", "admin: snapshot every store record into this `directory`")
		restoreDir = fs.String("restore", "", "admin: copy records from this backup `directory` into the store, healing bad records")
		prune      = fs.Bool("prune", false, "admin: delete broken records, stray files, and stale temp files from the store")
		gcRun      = fs.Bool("gc", false, "admin: evict least-recently-read unpinned records until -gc-keep/-gc-max-bytes hold")
		gcKeep     = fs.Int("gc-keep", 0, "-gc record-count cap (0 = no count cap)")
		gcMaxBytes = fs.Int64("gc-max-bytes", 0, "-gc total-size cap in bytes (0 = no size cap)")
		pin        = fs.String("pin", "", "admin: pin this plan's stored cells under `label`, protecting them from -gc")
		unpin      = fs.String("unpin", "", "admin: remove every pin carrying `label` from the store")

		// Daemon mode and its client verbs.
		serve    = fs.Bool("serve", false, "run a campaign daemon on -addr over the store (empty -store keeps artifacts in memory)")
		addr     = fs.String("addr", ":8080", "daemon `address`: bind address with -serve, target for client verbs")
		slots    = fs.Int("slots", 0, "daemon: jobs running concurrently, sharing -workers; queued beyond that (0 = 2)")
		submit   = fs.Bool("submit", false, "client: submit this plan to the daemon at -addr and print the job handle")
		watch    = fs.Bool("watch", false, "client: with -submit or -job, stream the job's events and wait for its final status")
		jobID    = fs.String("job", "", "client: print the status of job `id` from the daemon at -addr")
		fetchKey = fs.String("fetch", "", "client: fetch the stored artifact for `experiment/fingerprint` from the daemon")
		dstatus  = fs.Bool("status", false, "client: print the daemon's queue and store status")
		shutdown = fs.Bool("shutdown", false, "client: ask the daemon to drain and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	// Which flags did the user actually set? Mode validation below
	// rejects set-but-ignored flags instead of silently dropping them.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	shard, err := campaign.ParseShard(*shardSpec)
	if err != nil {
		return err
	}
	scenarioNames := splitNames(*scenarios)
	if *genSpec != "" {
		genNames, err := registerGenerated(*genSpec)
		if err != nil {
			return err
		}
		scenarioNames = append(scenarioNames, genNames...)
	}
	plan := campaign.Plan{
		Experiments: splitNames(*experiments),
		Scenarios:   scenarioNames,
		Seed:        *seed,
		Quick:       *quick,
	}
	if *precision != 0 || *maxTrials != 0 || *relPrec != 0 || *smpl != "" {
		plan.Overrides = []campaign.Override{{
			Precision: *precision, MaxTrials: *maxTrials,
			RelPrecision: *relPrec, Sampling: *smpl,
		}}
	}

	admin := adminRequest{
		verify:  *verify,
		backup:  *backupDir,
		restore: *restoreDir,
		prune:   *prune,
		gc:      *gcRun,
		policy:  store.GCPolicy{MaxRecords: *gcKeep, MaxBytes: *gcMaxBytes},
		pin:     *pin,
		unpin:   *unpin,
	}
	clientVerb, clientCount := "", 0
	for _, v := range []struct {
		name string
		on   bool
	}{
		{"-submit", *submit},
		{"-job", *jobID != ""},
		{"-fetch", *fetchKey != ""},
		{"-status", *dstatus},
		{"-shutdown", *shutdown},
	} {
		if v.on {
			clientVerb = v.name
			clientCount++
		}
	}
	if err := checkModeFlags(explicit, *serve, clientVerb, clientCount, admin, *gcRun, errw); err != nil {
		return err
	}

	if *serve {
		return runServe(ctx, *storeDir, *addr, *workers, *slots, errw)
	}
	if clientCount == 1 {
		return runClient(ctx, clientArgs{
			verb:    clientVerb,
			addr:    *addr,
			plan:    plan,
			force:   !*resume,
			watch:   *watch,
			jobID:   *jobID,
			fetch:   *fetchKey,
			jsonOut: *jsonOut,
		}, out, errw)
	}

	if admin.verbs() > 0 {
		if *storeDir == "" {
			fmt.Fprintln(errw, "campaign: store admin verbs need -store")
			return errUsage
		}
		return runAdmin(*storeDir, admin, plan, shard, out)
	}

	var st store.Store
	if *storeDir != "" {
		fsStore, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		defer fsStore.Close()
		st = fsStore
	}

	if *list {
		return listCells(plan, shard, st, out)
	}

	opts := campaign.Options{
		Store:   st,
		Force:   !*resume,
		Workers: *workers,
		Shard:   shard,
	}
	if *progress {
		opts.Progress = eventPrinter(errw)
	}
	rep, err := campaign.Run(ctx, plan, opts)
	if err != nil {
		return err
	}

	if *jsonOut {
		return writeJSON(out, rep)
	}
	for _, r := range rep.Cells {
		if r.Cached {
			fmt.Fprintf(out, "%-10s %s (store hit)\n", "cached", r.Cell.ID())
		} else {
			fmt.Fprintf(out, "%-10s %s (%.1fs, %d trials)\n",
				"ran", r.Cell.ID(), r.Artifact.WallSeconds, r.Artifact.Trials)
		}
	}
	where := "no store"
	if st != nil {
		where = "store " + *storeDir
	}
	shardNote := ""
	if s := rep.Shard; s != "" {
		shardNote = fmt.Sprintf(", shard %s of a %d-cell grid", s, rep.GridSize)
	}
	fmt.Fprintf(out, "campaign: %d cells, %d executed, %d cached (%s%s)\n",
		rep.Total, rep.Executed, rep.Cached, where, shardNote)
	return nil
}

// registerGenerated expands a -generate grid spec (internal/generate's
// compact axes syntax) and registers its scenarios in this process's
// registry, returning their names in grid order. Registration is
// idempotent, so a daemon restarted with the same grid, or a sharded
// rerun, resolves the same names to the same fingerprints.
func registerGenerated(spec string) ([]string, error) {
	baseName, axes, err := generate.ParseAxesSpec(spec)
	if err != nil {
		return nil, err
	}
	base, err := scenario.Lookup(baseName)
	if err != nil {
		return nil, err
	}
	gens, err := generate.Scenarios(base, axes)
	if err != nil {
		return nil, err
	}
	return generate.Ensure(gens)
}

// splitNames parses a comma-separated name list, dropping empties.
func splitNames(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// listCells renders the dry-run grid view: every cell of this shard
// with its store key and hit/miss status.
func listCells(plan campaign.Plan, shard campaign.Shard, st store.Store, out io.Writer) error {
	grid, err := campaign.Expand(plan)
	if err != nil {
		return err
	}
	if err := shard.Validate(); err != nil {
		return err
	}
	cells := shard.Filter(grid)
	fmt.Fprintf(out, "%-5s %-30s %-30s %s\n", "IDX", "CELL", "KEY", "STATUS")
	hits := 0
	for _, c := range cells {
		status := "miss"
		if st != nil && st.Has(c.Experiment, c.Fingerprint) {
			status = "hit"
			hits++
		}
		fmt.Fprintf(out, "%-5d %-30s %-30s %s\n", c.Index, c.ID(), c.Key(), status)
	}
	fmt.Fprintf(out, "%d cells (grid %d), %d store hits\n", len(cells), len(grid), hits)
	return nil
}

// writeJSON renders v as indented JSON — the CLI's machine face;
// scripts grep the two-space-indented keys.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// checkModeFlags enforces that every explicitly-set flag is meaningful
// in the selected mode. The failure this prevents is silent: a
// -gc-keep without -gc, or a -shard next to -verify, parses fine and
// then does nothing, so the user believes a cap or a restriction was
// applied when it was not. Each rejection names the conflict.
func checkModeFlags(explicit map[string]bool, serve bool, clientVerb string, clientCount int, admin adminRequest, gcRun bool, errw io.Writer) error {
	if (explicit["gc-keep"] || explicit["gc-max-bytes"]) && !gcRun {
		fmt.Fprintln(errw, "campaign: -gc-keep and -gc-max-bytes configure -gc, which was not requested; add -gc or drop them")
		return errUsage
	}
	adminCount := admin.verbs()
	switch {
	case adminCount > 1:
		fmt.Fprintln(errw, "campaign: pick exactly one admin verb (-verify, -backup, -restore, -prune, -gc, -pin, -unpin)")
		return errUsage
	case clientCount > 1:
		fmt.Fprintln(errw, "campaign: pick exactly one client verb (-submit, -job, -fetch, -status, -shutdown)")
		return errUsage
	case serve && (clientCount > 0 || adminCount > 0):
		fmt.Fprintln(errw, "campaign: -serve runs the daemon; it cannot be combined with client or admin verbs")
		return errUsage
	case clientCount > 0 && adminCount > 0:
		fmt.Fprintf(errw, "campaign: %s talks to a daemon and %s operates on a local store; run them separately\n", clientVerb, admin.verbName())
		return errUsage
	}

	planFlags := []string{"experiments", "scenarios", "generate", "quick", "seed", "precision", "maxtrials", "relprecision", "sampling"}
	allowed := map[string]bool{}
	add := func(names ...string) {
		for _, n := range names {
			allowed[n] = true
		}
	}
	var mode string
	switch {
	case serve:
		mode = "-serve"
		add("serve", "addr", "slots", "store", "workers", "generate")
	case clientCount == 1:
		mode = clientVerb
		add(strings.TrimPrefix(clientVerb, "-"), "addr", "json")
		switch clientVerb {
		case "-submit":
			add(planFlags...)
			add("resume", "watch")
		case "-job":
			add("watch")
		}
	case adminCount == 1:
		mode = admin.verbName()
		add(strings.TrimPrefix(mode, "-"), "store")
		switch mode {
		case "-gc":
			add("gc-keep", "gc-max-bytes")
		case "-pin":
			// -pin addresses this plan's (optionally sharded) grid.
			add(planFlags...)
			add("shard")
		}
	default:
		mode = "a campaign run"
		add(planFlags...)
		add("store", "resume", "shard", "workers", "list", "json", "progress")
	}
	var stray []string
	for name := range explicit {
		if !allowed[name] {
			stray = append(stray, "-"+name)
		}
	}
	if len(stray) > 0 {
		sort.Strings(stray)
		fmt.Fprintf(errw, "campaign: %s %s no effect with %s; drop %s or change the mode\n",
			strings.Join(stray, ", "), plural(len(stray), "has", "have"), mode, plural(len(stray), "it", "them"))
		return errUsage
	}
	return nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// runServe opens (or fabricates) the store and runs the daemon until a
// signal or a /v1/shutdown drains it.
func runServe(ctx context.Context, storeDir, addr string, workers, slots int, errw io.Writer) error {
	var st store.Store
	if storeDir == "" {
		// An addressable daemon is useful without a directory: repeat
		// submissions still hit the cache for the process lifetime.
		fmt.Fprintln(errw, "campaign: -serve without -store keeps artifacts in memory; they vanish when the daemon exits")
		st = store.OpenMem()
	} else {
		fsStore, err := store.Open(storeDir)
		if err != nil {
			return err
		}
		defer fsStore.Close()
		st = fsStore
	}
	srv := daemon.New(daemon.Options{
		Store:   st,
		Workers: workers,
		Slots:   slots,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(errw, format+"\n", args...)
		},
	})
	return srv.ListenAndServe(ctx, addr)
}

// clientArgs carries one client-verb invocation.
type clientArgs struct {
	verb    string
	addr    string
	plan    campaign.Plan
	force   bool
	watch   bool
	jobID   string
	fetch   string
	jsonOut bool
}

// runClient dispatches one client verb against the daemon at -addr.
func runClient(ctx context.Context, c clientArgs, out, errw io.Writer) error {
	cl := daemon.NewClient(c.addr)
	switch c.verb {
	case "-submit":
		st, err := cl.Submit(ctx, c.plan, c.force)
		if err != nil {
			return err
		}
		if !c.watch {
			return printJob(out, st, c.jsonOut)
		}
		fmt.Fprintf(errw, "submitted %s (%d cells); watching\n", st.ID, st.GridSize)
		return watchJob(ctx, cl, st.ID, c.jsonOut, out, errw)
	case "-job":
		if c.watch {
			return watchJob(ctx, cl, c.jobID, c.jsonOut, out, errw)
		}
		st, err := cl.Job(ctx, c.jobID)
		if err != nil {
			return err
		}
		return printJob(out, st, c.jsonOut)
	case "-fetch":
		name, fingerprint, ok := strings.Cut(c.fetch, "/")
		if !ok || name == "" || fingerprint == "" {
			fmt.Fprintln(errw, "campaign: -fetch wants experiment/fingerprint, e.g. -fetch fig8/0a1b2c3d4e5f")
			return errUsage
		}
		a, found, err := cl.Artifact(ctx, name, fingerprint)
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("daemon at %s holds no artifact for (%s, %s)", cl.BaseURL(), name, fingerprint)
		}
		if c.jsonOut {
			return a.WriteJSON(out)
		}
		return a.WriteText(out)
	case "-status":
		st, err := cl.Status(ctx)
		if err != nil {
			return err
		}
		if c.jsonOut {
			return writeJSON(out, st)
		}
		fmt.Fprintf(out, "daemon %s: %s, up %.0fs, %d of %d slots busy (%d workers per job)\n",
			cl.BaseURL(), st.State, st.UptimeSeconds, st.Running, st.Slots, st.JobWorkers)
		fmt.Fprintf(out, "jobs: %d queued, %d running, %d done, %d failed, %d interrupted\n",
			st.Queued, st.Running, st.Done, st.Failed, st.Interrupted)
		if st.StoreRecords >= 0 {
			where := "in memory"
			if st.StoreDir != "" {
				where = st.StoreDir
			}
			fmt.Fprintf(out, "store: %d records (%s)\n", st.StoreRecords, where)
		}
		return nil
	case "-shutdown":
		if err := cl.Shutdown(ctx); err != nil {
			return err
		}
		fmt.Fprintf(out, "daemon %s: draining\n", cl.BaseURL())
		return nil
	}
	return nil
}

// watchJob streams one job's events to the error stream and renders
// its terminal status; a job that did not finish done fails the
// invocation so scripts can gate on the exit code.
func watchJob(ctx context.Context, cl *daemon.Client, id string, jsonOut bool, out, errw io.Writer) error {
	printer := eventPrinter(errw)
	final, err := cl.Watch(ctx, id, func(e daemon.EventJSON) {
		ev := campaign.Event{Cell: e.Cell, Phase: e.Phase}
		if e.Error != "" {
			ev.Err = errors.New(e.Error)
		}
		printer(ev)
	})
	if err != nil {
		return err
	}
	if err := printJob(out, final, jsonOut); err != nil {
		return err
	}
	if final.State != daemon.StateDone {
		return fmt.Errorf("job %s finished %s: %s", final.ID, final.State, final.Error)
	}
	return nil
}

// printJob renders one job status line (or the full JSON snapshot).
func printJob(out io.Writer, st daemon.JobStatus, jsonOut bool) error {
	if jsonOut {
		return writeJSON(out, st)
	}
	line := fmt.Sprintf("%s: %s, %d cells, %d executed, %d cached", st.ID, st.State, st.GridSize, st.Executed, st.Cached)
	if st.Error != "" {
		line += " — " + st.Error
	}
	fmt.Fprintln(out, line)
	return nil
}

// adminRequest collects the store admin flags; at most one verb may be
// set per invocation, because each verb is a complete program.
type adminRequest struct {
	verify  bool
	backup  string
	restore string
	prune   bool
	gc      bool
	policy  store.GCPolicy
	pin     string
	unpin   string
}

// verbs counts how many admin verbs the invocation selected.
func (a adminRequest) verbs() int {
	n := 0
	for _, on := range []bool{a.verify, a.backup != "", a.restore != "", a.prune, a.gc, a.pin != "", a.unpin != ""} {
		if on {
			n++
		}
	}
	return n
}

// verbName names the selected admin verb for error messages.
func (a adminRequest) verbName() string {
	switch {
	case a.verify:
		return "-verify"
	case a.backup != "":
		return "-backup"
	case a.restore != "":
		return "-restore"
	case a.prune:
		return "-prune"
	case a.gc:
		return "-gc"
	case a.pin != "":
		return "-pin"
	case a.unpin != "":
		return "-unpin"
	}
	return ""
}

// runAdmin opens the store and dispatches the one selected admin verb.
func runAdmin(dir string, a adminRequest, plan campaign.Plan, shard campaign.Shard, out io.Writer) error {
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	switch {
	case a.verify:
		return verifyStore(st, out)
	case a.backup != "":
		n, err := st.Backup(a.backup)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "store %s: backed up %d records to %s\n", dir, n, a.backup)
		return nil
	case a.restore != "":
		n, err := st.Restore(a.restore)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "store %s: restored %d records from %s\n", dir, n, a.restore)
		return nil
	case a.prune:
		rep, err := st.Prune()
		if err != nil {
			return err
		}
		for _, key := range rep.RemovedRecords {
			fmt.Fprintf(out, "pruned record %s\n", key)
		}
		for _, name := range rep.RemovedStrays {
			fmt.Fprintf(out, "pruned stray  %s\n", name)
		}
		fmt.Fprintf(out, "store %s: %d records checked, %d broken records, %d strays, %d stale temps removed\n",
			dir, rep.Checked, len(rep.RemovedRecords), len(rep.RemovedStrays), rep.RemovedTemps)
		return nil
	case a.gc:
		rep, err := st.GC(a.policy)
		if err != nil {
			return err
		}
		for _, key := range rep.EvictedKeys {
			fmt.Fprintf(out, "evicted %s\n", key)
		}
		fmt.Fprintf(out, "store %s: evicted %d of %d records (%d pinned), freed %d bytes, kept %d (%d bytes)\n",
			dir, rep.Evicted, rep.Examined, rep.Pinned, rep.FreedBytes, rep.Kept, rep.KeptBytes)
		return nil
	case a.pin != "":
		return pinCells(st, plan, shard, a.pin, out)
	case a.unpin != "":
		n, err := st.Unpin(a.unpin)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "store %s: released %d pins labelled %q\n", dir, n, a.unpin)
		return nil
	}
	return nil
}

// verifyStore audits every record and renders the findings; any issue
// fails the invocation so scripts can gate on the exit status.
func verifyStore(st *store.FS, out io.Writer) error {
	rep, err := store.Verify(st)
	if err != nil {
		return err
	}
	for _, issue := range rep.Issues {
		fmt.Fprintf(out, "BAD %-30s %s: %s\n", issue.Key, issue.Location, issue.Detail)
	}
	if !rep.OK() {
		return fmt.Errorf("store: verify found %d issues across %d records (restore from a backup, or -prune / delete the files above)",
			len(rep.Issues), rep.Checked)
	}
	fmt.Fprintf(out, "store %s: %d records verified, 0 issues\n", st.Dir(), rep.Checked)
	return nil
}

// pinCells pins every stored cell of this invocation's plan grid under
// the label, so a later -gc keeps the campaign warm.
func pinCells(st *store.FS, plan campaign.Plan, shard campaign.Shard, label string, out io.Writer) error {
	grid, err := campaign.Expand(plan)
	if err != nil {
		return err
	}
	if err := shard.Validate(); err != nil {
		return err
	}
	cells := shard.Filter(grid)
	pinned := 0
	for _, c := range cells {
		if !st.Has(c.Experiment, c.Fingerprint) {
			continue
		}
		if err := st.Pin(label, c.Experiment, c.Fingerprint); err != nil {
			return err
		}
		pinned++
	}
	fmt.Fprintf(out, "store %s: pinned %d of %d cells under %q\n", st.Dir(), pinned, len(cells), label)
	return nil
}

// eventPrinter serialises concurrent campaign events onto one stream.
func eventPrinter(w io.Writer) func(campaign.Event) {
	var mu sync.Mutex
	return func(e campaign.Event) {
		mu.Lock()
		defer mu.Unlock()
		if e.Err != nil {
			fmt.Fprintf(w, "  %s %s: %v\n", e.Phase, e.Cell.ID(), e.Err)
			return
		}
		fmt.Fprintf(w, "  %s %s\n", e.Phase, e.Cell.ID())
	}
}
