// Command campaign drives scenario×experiment sweeps as one job
// against a fingerprint-keyed artifact store: the cross product of
// -experiments and -scenarios expands to a deterministic cell grid,
// cells already present in the store are served without re-simulating,
// and everything executed is persisted — so an interrupted campaign
// resumes where it stopped, a repeated campaign costs nothing, and
// -shard splits one campaign across independent processes.
//
// Usage:
//
//	campaign -experiments fig4,fig8 -scenarios paper,future-fab -store artifacts
//	campaign -quick -store artifacts            # every experiment, paper scenario, smoke scale
//	campaign ... -list                          # dry run: print the cell grid + hit/miss status
//	campaign ... -shard 0/2 & campaign ... -shard 1/2   # split one campaign
//	campaign ... -resume=false                  # force re-execution, overwriting stored cells
//	campaign ... -json                          # machine-readable report on stdout
//
// Store administration (each runs instead of a campaign; exactly one
// admin verb per invocation):
//
//	campaign -store artifacts -verify           # audit every record; exit 1 naming bad files
//	campaign -store artifacts -backup dir       # snapshot every record into dir
//	campaign -store artifacts -restore dir      # copy a snapshot's records back, healing bad ones
//	campaign -store artifacts -prune            # delete broken records, strays, stale temps
//	campaign -store artifacts -gc -gc-keep 100  # evict least-recently-read records over the cap
//	campaign -store artifacts -pin nightly      # protect this grid's records from -gc
//	campaign -store artifacts -unpin nightly    # release that protection
//
// Interrupting the process (SIGINT/SIGTERM) cancels the in-flight
// cells promptly; completed cells stay in the store and are skipped on
// the next invocation.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"chipletqc/internal/campaign"
	"chipletqc/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		// The engine's errors already carry the package prefix.
		fmt.Fprintln(os.Stderr, "campaign:", strings.TrimPrefix(err.Error(), "campaign: "))
		os.Exit(1)
	}
}

// errUsage marks argument errors the FlagSet has already reported to
// the error stream; main exits 2 without repeating them.
var errUsage = errors.New("usage error")

// run executes the tool against args, writing the report to out. It is
// the testable core of the binary.
func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		experiments = fs.String("experiments", "", "comma-separated experiment names (default: every registered experiment)")
		scenarios   = fs.String("scenarios", "", "comma-separated device scenario names (default: paper)")
		storeDir    = fs.String("store", "campaign-store", "artifact store directory; empty disables persistence")
		resume      = fs.Bool("resume", true, "serve cells already in the store instead of re-simulating; -resume=false forces re-execution")
		shardSpec   = fs.String("shard", "", "run only shard i of n of the cell grid, e.g. 0/2 (default: everything)")
		quick       = fs.Bool("quick", false, "reduced Monte Carlo batches (smoke scale)")
		seed        = fs.Int64("seed", 1, "base RNG seed for every cell")
		workers     = fs.Int("workers", 0, "total worker budget across cells (0 = all CPU cores; results identical either way)")
		precision   = fs.Float64("precision", 0, "adaptive mode: per-cell 95% CI half-width target (0 = each scenario's policy; negative forces fixed batch)")
		maxTrials   = fs.Int("maxtrials", 0, "adaptive mode trial budget per simulation (0 = each scenario's policy; negative resets)")
		list        = fs.Bool("list", false, "print the expanded cell grid with store hit/miss status and exit")
		jsonOut     = fs.Bool("json", false, "write the campaign report as JSON to stdout instead of text")
		progress    = fs.Bool("progress", false, "stream per-cell events to the error stream")

		// Store admin verbs: each runs instead of a campaign.
		verify     = fs.Bool("verify", false, "admin: audit every store record (decode + identity cross-check); exit 1 naming bad files")
		backupDir  = fs.String("backup", "", "admin: snapshot every store record into this `directory`")
		restoreDir = fs.String("restore", "", "admin: copy records from this backup `directory` into the store, healing bad records")
		prune      = fs.Bool("prune", false, "admin: delete broken records, stray files, and stale temp files from the store")
		gcRun      = fs.Bool("gc", false, "admin: evict least-recently-read unpinned records until -gc-keep/-gc-max-bytes hold")
		gcKeep     = fs.Int("gc-keep", 0, "-gc record-count cap (0 = no count cap)")
		gcMaxBytes = fs.Int64("gc-max-bytes", 0, "-gc total-size cap in bytes (0 = no size cap)")
		pin        = fs.String("pin", "", "admin: pin this plan's stored cells under `label`, protecting them from -gc")
		unpin      = fs.String("unpin", "", "admin: remove every pin carrying `label` from the store")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	shard, err := campaign.ParseShard(*shardSpec)
	if err != nil {
		return err
	}
	plan := campaign.Plan{
		Experiments: splitNames(*experiments),
		Scenarios:   splitNames(*scenarios),
		Seed:        *seed,
		Quick:       *quick,
	}
	if *precision != 0 || *maxTrials != 0 {
		plan.Overrides = []campaign.Override{{Precision: *precision, MaxTrials: *maxTrials}}
	}

	admin := adminRequest{
		verify:  *verify,
		backup:  *backupDir,
		restore: *restoreDir,
		prune:   *prune,
		gc:      *gcRun,
		policy:  store.GCPolicy{MaxRecords: *gcKeep, MaxBytes: *gcMaxBytes},
		pin:     *pin,
		unpin:   *unpin,
	}
	if n := admin.verbs(); n > 0 {
		if n > 1 {
			fmt.Fprintln(errw, "campaign: pick exactly one admin verb (-verify, -backup, -restore, -prune, -gc, -pin, -unpin)")
			return errUsage
		}
		if *storeDir == "" {
			fmt.Fprintln(errw, "campaign: store admin verbs need -store")
			return errUsage
		}
		return runAdmin(*storeDir, admin, plan, shard, out)
	}

	var st store.Store
	if *storeDir != "" {
		fsStore, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		defer fsStore.Close()
		st = fsStore
	}

	if *list {
		return listCells(plan, shard, st, out)
	}

	opts := campaign.Options{
		Store:   st,
		Force:   !*resume,
		Workers: *workers,
		Shard:   shard,
	}
	if *progress {
		opts.Progress = eventPrinter(errw)
	}
	rep, err := campaign.Run(ctx, plan, opts)
	if err != nil {
		return err
	}

	if *jsonOut {
		return writeJSON(out, rep)
	}
	for _, r := range rep.Cells {
		if r.Cached {
			fmt.Fprintf(out, "%-10s %s (store hit)\n", "cached", r.Cell.ID())
		} else {
			fmt.Fprintf(out, "%-10s %s (%.1fs, %d trials)\n",
				"ran", r.Cell.ID(), r.Artifact.WallSeconds, r.Artifact.Trials)
		}
	}
	where := "no store"
	if st != nil {
		where = "store " + *storeDir
	}
	shardNote := ""
	if s := rep.Shard; s != "" {
		shardNote = fmt.Sprintf(", shard %s of a %d-cell grid", s, rep.GridSize)
	}
	fmt.Fprintf(out, "campaign: %d cells, %d executed, %d cached (%s%s)\n",
		rep.Total, rep.Executed, rep.Cached, where, shardNote)
	return nil
}

// splitNames parses a comma-separated name list, dropping empties.
func splitNames(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// listCells renders the dry-run grid view: every cell of this shard
// with its store key and hit/miss status.
func listCells(plan campaign.Plan, shard campaign.Shard, st store.Store, out io.Writer) error {
	grid, err := campaign.Expand(plan)
	if err != nil {
		return err
	}
	if err := shard.Validate(); err != nil {
		return err
	}
	cells := shard.Filter(grid)
	fmt.Fprintf(out, "%-5s %-30s %-30s %s\n", "IDX", "CELL", "KEY", "STATUS")
	hits := 0
	for _, c := range cells {
		status := "miss"
		if st != nil && st.Has(c.Experiment, c.Fingerprint) {
			status = "hit"
			hits++
		}
		fmt.Fprintf(out, "%-5d %-30s %-30s %s\n", c.Index, c.ID(), c.Key(), status)
	}
	fmt.Fprintf(out, "%d cells (grid %d), %d store hits\n", len(cells), len(grid), hits)
	return nil
}

// writeJSON renders the report as indented JSON.
func writeJSON(w io.Writer, rep campaign.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// adminRequest collects the store admin flags; at most one verb may be
// set per invocation, because each verb is a complete program.
type adminRequest struct {
	verify  bool
	backup  string
	restore string
	prune   bool
	gc      bool
	policy  store.GCPolicy
	pin     string
	unpin   string
}

// verbs counts how many admin verbs the invocation selected.
func (a adminRequest) verbs() int {
	n := 0
	for _, on := range []bool{a.verify, a.backup != "", a.restore != "", a.prune, a.gc, a.pin != "", a.unpin != ""} {
		if on {
			n++
		}
	}
	return n
}

// runAdmin opens the store and dispatches the one selected admin verb.
func runAdmin(dir string, a adminRequest, plan campaign.Plan, shard campaign.Shard, out io.Writer) error {
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	switch {
	case a.verify:
		return verifyStore(st, out)
	case a.backup != "":
		n, err := st.Backup(a.backup)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "store %s: backed up %d records to %s\n", dir, n, a.backup)
		return nil
	case a.restore != "":
		n, err := st.Restore(a.restore)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "store %s: restored %d records from %s\n", dir, n, a.restore)
		return nil
	case a.prune:
		rep, err := st.Prune()
		if err != nil {
			return err
		}
		for _, key := range rep.RemovedRecords {
			fmt.Fprintf(out, "pruned record %s\n", key)
		}
		for _, name := range rep.RemovedStrays {
			fmt.Fprintf(out, "pruned stray  %s\n", name)
		}
		fmt.Fprintf(out, "store %s: %d records checked, %d broken records, %d strays, %d stale temps removed\n",
			dir, rep.Checked, len(rep.RemovedRecords), len(rep.RemovedStrays), rep.RemovedTemps)
		return nil
	case a.gc:
		rep, err := st.GC(a.policy)
		if err != nil {
			return err
		}
		for _, key := range rep.EvictedKeys {
			fmt.Fprintf(out, "evicted %s\n", key)
		}
		fmt.Fprintf(out, "store %s: evicted %d of %d records (%d pinned), freed %d bytes, kept %d (%d bytes)\n",
			dir, rep.Evicted, rep.Examined, rep.Pinned, rep.FreedBytes, rep.Kept, rep.KeptBytes)
		return nil
	case a.pin != "":
		return pinCells(st, plan, shard, a.pin, out)
	case a.unpin != "":
		n, err := st.Unpin(a.unpin)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "store %s: released %d pins labelled %q\n", dir, n, a.unpin)
		return nil
	}
	return nil
}

// verifyStore audits every record and renders the findings; any issue
// fails the invocation so scripts can gate on the exit status.
func verifyStore(st *store.FS, out io.Writer) error {
	rep, err := store.Verify(st)
	if err != nil {
		return err
	}
	for _, issue := range rep.Issues {
		fmt.Fprintf(out, "BAD %-30s %s: %s\n", issue.Key, issue.Location, issue.Detail)
	}
	if !rep.OK() {
		return fmt.Errorf("store: verify found %d issues across %d records (restore from a backup, or -prune / delete the files above)",
			len(rep.Issues), rep.Checked)
	}
	fmt.Fprintf(out, "store %s: %d records verified, 0 issues\n", st.Dir(), rep.Checked)
	return nil
}

// pinCells pins every stored cell of this invocation's plan grid under
// the label, so a later -gc keeps the campaign warm.
func pinCells(st *store.FS, plan campaign.Plan, shard campaign.Shard, label string, out io.Writer) error {
	grid, err := campaign.Expand(plan)
	if err != nil {
		return err
	}
	if err := shard.Validate(); err != nil {
		return err
	}
	cells := shard.Filter(grid)
	pinned := 0
	for _, c := range cells {
		if !st.Has(c.Experiment, c.Fingerprint) {
			continue
		}
		if err := st.Pin(label, c.Experiment, c.Fingerprint); err != nil {
			return err
		}
		pinned++
	}
	fmt.Fprintf(out, "store %s: pinned %d of %d cells under %q\n", st.Dir(), pinned, len(cells), label)
	return nil
}

// eventPrinter serialises concurrent campaign events onto one stream.
func eventPrinter(w io.Writer) func(campaign.Event) {
	var mu sync.Mutex
	return func(e campaign.Event) {
		mu.Lock()
		defer mu.Unlock()
		if e.Err != nil {
			fmt.Fprintf(w, "  %s %s: %v\n", e.Phase, e.Cell.ID(), e.Err)
			return
		}
		fmt.Fprintf(w, "  %s %s\n", e.Phase, e.Cell.ID())
	}
}
