package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runArgs invokes the CLI core and returns its streams.
func runArgs(t *testing.T, ctx context.Context, args ...string) (string, string, error) {
	t.Helper()
	var out, errs strings.Builder
	err := run(ctx, args, &out, &errs)
	return out.String(), errs.String(), err
}

// TestColdThenWarmRun pins the end-to-end cache contract through the
// CLI: a 2×2 grid executes fully once, then is served entirely from
// the store.
func TestColdThenWarmRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	args := []string{"-quick", "-experiments", "fig2,eq1", "-scenarios", "paper,future-fab", "-store", dir}

	out, _, err := runArgs(t, context.Background(), args...)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if !strings.Contains(out, "4 cells, 4 executed, 0 cached") {
		t.Errorf("cold run summary wrong:\n%s", out)
	}

	out, _, err = runArgs(t, context.Background(), args...)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !strings.Contains(out, "4 cells, 0 executed, 4 cached") {
		t.Errorf("warm run summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "cached     fig2@future-fab (store hit)") {
		t.Errorf("warm run should list per-cell store hits:\n%s", out)
	}
}

// TestShardedRunsCoverGrid pins -shard: 0/2 and 1/2 together fill the
// store so a subsequent unsharded run executes nothing.
func TestShardedRunsCoverGrid(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	base := []string{"-quick", "-experiments", "fig2,eq1", "-scenarios", "paper,future-fab", "-store", dir}

	for _, shard := range []string{"0/2", "1/2"} {
		out, _, err := runArgs(t, context.Background(), append(base, "-shard", shard)...)
		if err != nil {
			t.Fatalf("shard %s: %v", shard, err)
		}
		if !strings.Contains(out, "2 cells, 2 executed, 0 cached") ||
			!strings.Contains(out, "shard "+shard+" of a 4-cell grid") {
			t.Errorf("shard %s summary wrong:\n%s", shard, out)
		}
	}
	out, _, err := runArgs(t, context.Background(), base...)
	if err != nil {
		t.Fatalf("unsharded pass: %v", err)
	}
	if !strings.Contains(out, "4 cells, 0 executed, 4 cached") {
		t.Errorf("shards did not fill the store:\n%s", out)
	}
}

// TestResumeFalseForcesReexecution pins -resume=false: a warm store is
// ignored and overwritten.
func TestResumeFalseForcesReexecution(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	base := []string{"-quick", "-experiments", "fig2", "-store", dir}
	if _, _, err := runArgs(t, context.Background(), base...); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	out, _, err := runArgs(t, context.Background(), append(base, "-resume=false")...)
	if err != nil {
		t.Fatalf("forced run: %v", err)
	}
	if !strings.Contains(out, "1 cells, 1 executed, 0 cached") {
		t.Errorf("-resume=false should re-execute:\n%s", out)
	}
}

// TestJSONReport pins -json: a machine-readable report with the
// executed/cached counts the CI smoke job asserts on.
func TestJSONReport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	args := []string{"-quick", "-experiments", "fig2", "-scenarios", "paper,future-fab", "-store", dir, "-json"}
	out, _, err := runArgs(t, context.Background(), args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep struct {
		GridSize int `json:"grid_size"`
		Total    int `json:"total"`
		Executed int `json:"executed"`
		Cached   int `json:"cached"`
		Cells    []struct {
			Cell struct {
				Experiment  string `json:"experiment"`
				Scenario    string `json:"scenario"`
				Fingerprint string `json:"config_fingerprint"`
			} `json:"cell"`
			Cached bool `json:"cached"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out)
	}
	if rep.GridSize != 2 || rep.Total != 2 || rep.Executed != 2 || rep.Cached != 0 {
		t.Errorf("report counts wrong: %+v", rep)
	}
	if len(rep.Cells) != 2 || rep.Cells[0].Cell.Fingerprint == "" {
		t.Errorf("report cells missing identity: %+v", rep.Cells)
	}
	if rep.Cells[0].Cell.Fingerprint == rep.Cells[1].Cell.Fingerprint {
		t.Error("different scenarios should fingerprint differently")
	}
}

// TestListDryRun pins -list: the grid with store hit/miss status, no
// execution.
func TestListDryRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	base := []string{"-quick", "-experiments", "fig2,eq1", "-store", dir}
	out, _, err := runArgs(t, context.Background(), append(base, "-list")...)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if !strings.Contains(out, "fig2@paper") || !strings.Contains(out, "2 cells (grid 2), 0 store hits") {
		t.Errorf("cold -list output wrong:\n%s", out)
	}
	if _, _, err := runArgs(t, context.Background(), base...); err != nil {
		t.Fatalf("fill run: %v", err)
	}
	out, _, err = runArgs(t, context.Background(), append(base, "-list")...)
	if err != nil {
		t.Fatalf("warm list: %v", err)
	}
	if !strings.Contains(out, "2 store hits") {
		t.Errorf("warm -list should report hits:\n%s", out)
	}
}

// TestProgressStream pins -progress: per-cell events on the error
// stream, report on the output stream.
func TestProgressStream(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	_, errs, err := runArgs(t, context.Background(),
		"-quick", "-experiments", "fig2", "-store", dir, "-progress")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(errs, "run fig2@paper") || !strings.Contains(errs, "done fig2@paper") {
		t.Errorf("progress events missing from error stream:\n%s", errs)
	}
}

// TestErrorPaths pins the CLI failure modes: unknown names, bad shard
// syntax, unknown flags, and -h.
func TestErrorPaths(t *testing.T) {
	if _, _, err := runArgs(t, context.Background(), "-experiments", "nope", "-store", ""); err == nil ||
		!strings.Contains(err.Error(), "known:") {
		t.Errorf("unknown experiment should list known names, got %v", err)
	}
	if _, _, err := runArgs(t, context.Background(), "-shard", "2"); err == nil ||
		!strings.Contains(err.Error(), "i/n") {
		t.Errorf("bad shard syntax should explain the form, got %v", err)
	}
	out, errs, err := runArgs(t, context.Background(), "-definitely-not-a-flag")
	if err == nil {
		t.Error("unknown flag should return an error")
	}
	if out != "" {
		t.Errorf("flag diagnostics leaked into the report stream:\n%s", out)
	}
	if !strings.Contains(errs, "definitely-not-a-flag") {
		t.Errorf("error stream should name the bad flag:\n%s", errs)
	}
	if _, errs, err := runArgs(t, context.Background(), "-h"); err != nil {
		t.Errorf("-h should not be an error, got %v", err)
	} else if !strings.Contains(errs, "-shard") {
		t.Errorf("usage should document -shard:\n%s", errs)
	}
}

// TestNoStoreRuns pins -store "": the campaign runs without
// persistence.
func TestNoStoreRuns(t *testing.T) {
	out, _, err := runArgs(t, context.Background(), "-quick", "-experiments", "fig2", "-store", "")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "1 cells, 1 executed, 0 cached (no store)") {
		t.Errorf("store-less summary wrong:\n%s", out)
	}
}

// fillStore runs a tiny campaign into dir and returns one record path.
func fillStore(t *testing.T, dir string) string {
	t.Helper()
	if _, _, err := runArgs(t, context.Background(),
		"-quick", "-experiments", "fig2", "-store", dir); err != nil {
		t.Fatalf("fill run: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "fig2-*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected one fig2 record in %s, got %v (err %v)", dir, matches, err)
	}
	return matches[0]
}

// TestVerifyBackupRestoreCycle pins the admin workflow end to end: a
// clean store verifies, a corrupted record fails -verify naming the
// file, and -restore from a -backup heals it.
func TestVerifyBackupRestoreCycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	bak := filepath.Join(t.TempDir(), "bak")
	record := fillStore(t, dir)

	out, _, err := runArgs(t, context.Background(), "-store", dir, "-verify")
	if err != nil {
		t.Fatalf("verify of a clean store failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "0 issues") {
		t.Errorf("clean verify output wrong:\n%s", out)
	}

	out, _, err = runArgs(t, context.Background(), "-store", dir, "-backup", bak)
	if err != nil {
		t.Fatalf("backup: %v", err)
	}
	if !strings.Contains(out, "backed up 1 records") {
		t.Errorf("backup output wrong:\n%s", out)
	}

	if err := os.WriteFile(record, []byte("{corrupted"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err = runArgs(t, context.Background(), "-store", dir, "-verify")
	if err == nil {
		t.Fatalf("verify should fail on a corrupt store:\n%s", out)
	}
	if !strings.Contains(out, record) {
		t.Errorf("verify should name the corrupt file %s:\n%s", record, out)
	}

	if _, _, err = runArgs(t, context.Background(), "-store", dir, "-restore", bak); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if out, _, err = runArgs(t, context.Background(), "-store", dir, "-verify"); err != nil {
		t.Fatalf("verify after restore: %v\n%s", err, out)
	}
	// The healed store serves the campaign without re-executing.
	out, _, err = runArgs(t, context.Background(), "-quick", "-experiments", "fig2", "-store", dir)
	if err != nil {
		t.Fatalf("warm run after restore: %v", err)
	}
	if !strings.Contains(out, "1 cells, 0 executed, 1 cached") {
		t.Errorf("restored store should serve the campaign:\n%s", out)
	}
}

// TestPruneRemovesPlantedJunk pins -prune through the CLI: a corrupt
// record and a stray file disappear; the next run re-executes only the
// pruned cell.
func TestPruneRemovesPlantedJunk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	record := fillStore(t, dir)
	if err := os.WriteFile(record, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Only .json strays are pruned — arbitrary user files are left alone.
	if err := os.WriteFile(filepath.Join(dir, "NOT-A-RECORD.json"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runArgs(t, context.Background(), "-store", dir, "-prune")
	if err != nil {
		t.Fatalf("prune: %v", err)
	}
	if !strings.Contains(out, "1 broken records, 1 strays") {
		t.Errorf("prune summary wrong:\n%s", out)
	}
	if _, err := os.Stat(record); !os.IsNotExist(err) {
		t.Errorf("pruned record still present: %v", err)
	}
	if out, _, err := runArgs(t, context.Background(), "-store", dir, "-verify"); err != nil {
		t.Errorf("verify after prune: %v\n%s", err, out)
	}
}

// TestGCPinCycle pins -pin/-gc/-unpin: a pinned cell survives an
// evict-everything GC, and -unpin releases it.
func TestGCPinCycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	base := []string{"-quick", "-experiments", "fig2,eq1", "-store", dir}
	if _, _, err := runArgs(t, context.Background(), base...); err != nil {
		t.Fatalf("fill run: %v", err)
	}
	pinArgs := []string{"-quick", "-experiments", "fig2", "-store", dir, "-pin", "keep"}
	out, _, err := runArgs(t, context.Background(), pinArgs...)
	if err != nil {
		t.Fatalf("pin: %v", err)
	}
	if !strings.Contains(out, `pinned 1 of 1 cells under "keep"`) {
		t.Errorf("pin output wrong:\n%s", out)
	}
	out, _, err = runArgs(t, context.Background(), "-store", dir, "-gc", "-gc-keep", "1")
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if !strings.Contains(out, "evicted eq1-") || strings.Contains(out, "evicted fig2-") {
		t.Errorf("gc should evict the unpinned eq1 record only:\n%s", out)
	}
	out, _, err = runArgs(t, context.Background(), "-store", dir, "-unpin", "keep")
	if err != nil {
		t.Fatalf("unpin: %v", err)
	}
	if !strings.Contains(out, `released 1 pins labelled "keep"`) {
		t.Errorf("unpin output wrong:\n%s", out)
	}
}

// TestAdminVerbValidation pins the admin UX guards: verbs are mutually
// exclusive and need a store.
func TestAdminVerbValidation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if _, errs, err := runArgs(t, context.Background(), "-store", dir, "-verify", "-prune"); err == nil {
		t.Error("two admin verbs should be a usage error")
	} else if !strings.Contains(errs, "exactly one admin verb") {
		t.Errorf("error stream should explain the verb rule:\n%s", errs)
	}
	if _, errs, err := runArgs(t, context.Background(), "-store", "", "-verify"); err == nil {
		t.Error("admin verb without a store should be a usage error")
	} else if !strings.Contains(errs, "need -store") {
		t.Errorf("error stream should demand -store:\n%s", errs)
	}
}

// TestGenerateFlagRunsAGeneratedGrid pins -generate: the grid's
// scenarios register, run like any preset, and cache by fingerprint.
func TestGenerateFlagRunsAGeneratedGrid(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	args := []string{"-quick", "-experiments", "genyield", "-store", dir,
		"-generate", "topos=hex-1x2-q6,square-1x2-q6;sigmas=0.004,0.008"}

	out, _, err := runArgs(t, context.Background(), args...)
	if err != nil {
		t.Fatalf("generated grid run: %v", err)
	}
	if !strings.Contains(out, "4 cells, 4 executed, 0 cached") {
		t.Errorf("cold generated run summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "genyield@gen/hex-1x2-q6/sigma0.004") {
		t.Errorf("generated scenario names missing from the cell list:\n%s", out)
	}
	out, _, err = runArgs(t, context.Background(), args...)
	if err != nil {
		t.Fatalf("warm generated run: %v", err)
	}
	if !strings.Contains(out, "4 cells, 0 executed, 4 cached") {
		t.Errorf("warm generated run summary wrong:\n%s", out)
	}

	if _, _, err := runArgs(t, context.Background(),
		"-quick", "-generate", "topos=;sigmas=0.004"); err == nil {
		t.Error("empty -generate topos should fail")
	}
}
