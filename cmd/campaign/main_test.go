package main

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// runArgs invokes the CLI core and returns its streams.
func runArgs(t *testing.T, ctx context.Context, args ...string) (string, string, error) {
	t.Helper()
	var out, errs strings.Builder
	err := run(ctx, args, &out, &errs)
	return out.String(), errs.String(), err
}

// TestColdThenWarmRun pins the end-to-end cache contract through the
// CLI: a 2×2 grid executes fully once, then is served entirely from
// the store.
func TestColdThenWarmRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	args := []string{"-quick", "-experiments", "fig2,eq1", "-scenarios", "paper,future-fab", "-store", dir}

	out, _, err := runArgs(t, context.Background(), args...)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if !strings.Contains(out, "4 cells, 4 executed, 0 cached") {
		t.Errorf("cold run summary wrong:\n%s", out)
	}

	out, _, err = runArgs(t, context.Background(), args...)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !strings.Contains(out, "4 cells, 0 executed, 4 cached") {
		t.Errorf("warm run summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "cached     fig2@future-fab (store hit)") {
		t.Errorf("warm run should list per-cell store hits:\n%s", out)
	}
}

// TestShardedRunsCoverGrid pins -shard: 0/2 and 1/2 together fill the
// store so a subsequent unsharded run executes nothing.
func TestShardedRunsCoverGrid(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	base := []string{"-quick", "-experiments", "fig2,eq1", "-scenarios", "paper,future-fab", "-store", dir}

	for _, shard := range []string{"0/2", "1/2"} {
		out, _, err := runArgs(t, context.Background(), append(base, "-shard", shard)...)
		if err != nil {
			t.Fatalf("shard %s: %v", shard, err)
		}
		if !strings.Contains(out, "2 cells, 2 executed, 0 cached") ||
			!strings.Contains(out, "shard "+shard+" of a 4-cell grid") {
			t.Errorf("shard %s summary wrong:\n%s", shard, out)
		}
	}
	out, _, err := runArgs(t, context.Background(), base...)
	if err != nil {
		t.Fatalf("unsharded pass: %v", err)
	}
	if !strings.Contains(out, "4 cells, 0 executed, 4 cached") {
		t.Errorf("shards did not fill the store:\n%s", out)
	}
}

// TestResumeFalseForcesReexecution pins -resume=false: a warm store is
// ignored and overwritten.
func TestResumeFalseForcesReexecution(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	base := []string{"-quick", "-experiments", "fig2", "-store", dir}
	if _, _, err := runArgs(t, context.Background(), base...); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	out, _, err := runArgs(t, context.Background(), append(base, "-resume=false")...)
	if err != nil {
		t.Fatalf("forced run: %v", err)
	}
	if !strings.Contains(out, "1 cells, 1 executed, 0 cached") {
		t.Errorf("-resume=false should re-execute:\n%s", out)
	}
}

// TestJSONReport pins -json: a machine-readable report with the
// executed/cached counts the CI smoke job asserts on.
func TestJSONReport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	args := []string{"-quick", "-experiments", "fig2", "-scenarios", "paper,future-fab", "-store", dir, "-json"}
	out, _, err := runArgs(t, context.Background(), args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep struct {
		GridSize int `json:"grid_size"`
		Total    int `json:"total"`
		Executed int `json:"executed"`
		Cached   int `json:"cached"`
		Cells    []struct {
			Cell struct {
				Experiment  string `json:"experiment"`
				Scenario    string `json:"scenario"`
				Fingerprint string `json:"config_fingerprint"`
			} `json:"cell"`
			Cached bool `json:"cached"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out)
	}
	if rep.GridSize != 2 || rep.Total != 2 || rep.Executed != 2 || rep.Cached != 0 {
		t.Errorf("report counts wrong: %+v", rep)
	}
	if len(rep.Cells) != 2 || rep.Cells[0].Cell.Fingerprint == "" {
		t.Errorf("report cells missing identity: %+v", rep.Cells)
	}
	if rep.Cells[0].Cell.Fingerprint == rep.Cells[1].Cell.Fingerprint {
		t.Error("different scenarios should fingerprint differently")
	}
}

// TestListDryRun pins -list: the grid with store hit/miss status, no
// execution.
func TestListDryRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	base := []string{"-quick", "-experiments", "fig2,eq1", "-store", dir}
	out, _, err := runArgs(t, context.Background(), append(base, "-list")...)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if !strings.Contains(out, "fig2@paper") || !strings.Contains(out, "2 cells (grid 2), 0 store hits") {
		t.Errorf("cold -list output wrong:\n%s", out)
	}
	if _, _, err := runArgs(t, context.Background(), base...); err != nil {
		t.Fatalf("fill run: %v", err)
	}
	out, _, err = runArgs(t, context.Background(), append(base, "-list")...)
	if err != nil {
		t.Fatalf("warm list: %v", err)
	}
	if !strings.Contains(out, "2 store hits") {
		t.Errorf("warm -list should report hits:\n%s", out)
	}
}

// TestProgressStream pins -progress: per-cell events on the error
// stream, report on the output stream.
func TestProgressStream(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	_, errs, err := runArgs(t, context.Background(),
		"-quick", "-experiments", "fig2", "-store", dir, "-progress")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(errs, "run fig2@paper") || !strings.Contains(errs, "done fig2@paper") {
		t.Errorf("progress events missing from error stream:\n%s", errs)
	}
}

// TestErrorPaths pins the CLI failure modes: unknown names, bad shard
// syntax, unknown flags, and -h.
func TestErrorPaths(t *testing.T) {
	if _, _, err := runArgs(t, context.Background(), "-experiments", "nope", "-store", ""); err == nil ||
		!strings.Contains(err.Error(), "known:") {
		t.Errorf("unknown experiment should list known names, got %v", err)
	}
	if _, _, err := runArgs(t, context.Background(), "-shard", "2"); err == nil ||
		!strings.Contains(err.Error(), "i/n") {
		t.Errorf("bad shard syntax should explain the form, got %v", err)
	}
	out, errs, err := runArgs(t, context.Background(), "-definitely-not-a-flag")
	if err == nil {
		t.Error("unknown flag should return an error")
	}
	if out != "" {
		t.Errorf("flag diagnostics leaked into the report stream:\n%s", out)
	}
	if !strings.Contains(errs, "definitely-not-a-flag") {
		t.Errorf("error stream should name the bad flag:\n%s", errs)
	}
	if _, errs, err := runArgs(t, context.Background(), "-h"); err != nil {
		t.Errorf("-h should not be an error, got %v", err)
	} else if !strings.Contains(errs, "-shard") {
		t.Errorf("usage should document -shard:\n%s", errs)
	}
}

// TestNoStoreRuns pins -store "": the campaign runs without
// persistence.
func TestNoStoreRuns(t *testing.T) {
	out, _, err := runArgs(t, context.Background(), "-quick", "-experiments", "fig2", "-store", "")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "1 cells, 1 executed, 0 cached (no store)") {
		t.Errorf("store-less summary wrong:\n%s", out)
	}
}
