package chipletqc

import (
	"context"

	"chipletqc/internal/eval"
	"chipletqc/internal/experiment"
	"chipletqc/internal/mcm"
	"chipletqc/internal/stats"
	"chipletqc/internal/yield"
)

// Experiment re-exports: every figure/table of the paper's evaluation
// section is available two ways.
//
//  1. The Experiment registry: named, discoverable, cancellable units of
//     work that emit self-describing Artifacts —
//
//     exp, _ := chipletqc.LookupExperiment("fig8")
//     artifact, err := exp.Run(ctx, chipletqc.QuickExperimentConfig(1))
//     artifact.WriteText(os.Stdout)  // stable text rendering
//     artifact.WriteJSON(f)          // machine-readable record
//
//  2. Typed ctx-first entry points (Fig1, Fig8, Table2, ...) returning
//     structured results for programmatic consumption.
//
// To sweep experiments across device scenarios — with caching, resume,
// and sharding through the artifact store — drive the registry via
// RunCampaign (campaigns.go) instead of looping over Run calls.
//
// ExperimentConfig scales the Monte Carlo batches; DefaultExperimentConfig
// matches the paper, QuickExperimentConfig is sized for smoke tests.
// ExperimentConfig.Workers fans every Monte Carlo and sweep loop out
// across goroutines (0 = all CPU cores); results are bit-identical at
// any worker count because each trial derives its RNG stream from
// (seed, trial index). ExperimentConfig.Progress streams per-experiment
// trial counts for long runs; cancelling the context stops a run within
// one in-flight trial per worker.
type (
	// ExperimentConfig scales the experiment harness batches.
	ExperimentConfig = eval.Config
	// Experiment is one named, cancellable workload from the registry.
	Experiment = experiment.Experiment
	// Artifact is a self-describing, JSON-serializable experiment result:
	// name, seed, config fingerprint, wall time, trials used, payload
	// table, with a stable text rendering.
	Artifact = experiment.Artifact
	// Summary is a five-number box-plot summary (Fig. 3b rows).
	Summary = stats.Summary
	// YieldSweepCell is one (step, sigma) yield curve of Fig. 4.
	YieldSweepCell = yield.SweepCell
	// Fig1Row, Fig2Result, ... mirror the paper's figures; see the eval
	// package documentation for field semantics.
	Fig1Row    = eval.Fig1Row
	Fig2Result = eval.Fig2Result
	Fig6Result = eval.Fig6Result
	Fig7Result = eval.Fig7Result
	Fig8Result = eval.Fig8Result
	Fig9Cell   = eval.Fig9Cell
	Fig10Point = eval.Fig10Point
	Table2Row  = eval.Table2Row
	Eq1Result  = eval.Eq1Result
)

// Experiments returns every registered experiment in paper order
// (fig1..fig10, fig10corr, table2, eq1, plus any caller registrations).
func Experiments() []Experiment { return experiment.All() }

// ExperimentNames returns the registered experiment names in order.
func ExperimentNames() []string { return experiment.Names() }

// LookupExperiment returns the experiment registered under name.
func LookupExperiment(name string) (Experiment, bool) { return experiment.Lookup(name) }

// RegisterExperiment adds a caller-defined experiment to the registry,
// making it addressable by the cmd tools and Experiments(). It panics
// on a duplicate name.
func RegisterExperiment(e Experiment) { experiment.Register(e) }

// ConfigFingerprint hashes every determinism-relevant field of an
// experiment config into the short stable token Artifacts carry.
func ConfigFingerprint(cfg ExperimentConfig) string { return experiment.Fingerprint(cfg) }

// DefaultExperimentConfig returns full-paper-scale settings (batch 10^4,
// systems to 500 qubits).
func DefaultExperimentConfig(seed int64) ExperimentConfig {
	return eval.DefaultConfig(seed)
}

// QuickExperimentConfig returns reduced settings for smoke runs.
func QuickExperimentConfig(seed int64) ExperimentConfig {
	return eval.QuickConfig(seed)
}

// Fig1 quantifies the yield/infidelity trade-off versus module size.
func Fig1(ctx context.Context, cfg ExperimentConfig) ([]Fig1Row, error) {
	return eval.Fig1(ctx, cfg)
}

// Fig2 computes the illustrative wafer-output comparison (pure
// arithmetic, hence no context).
func Fig2(monoDies, chipletsPerMono, defects int) Fig2Result {
	return eval.Fig2(monoDies, chipletsPerMono, defects)
}

// Fig3b generates CX-infidelity box plots for 27/65/127-qubit devices.
func Fig3b(ctx context.Context, cfg ExperimentConfig) ([]Summary, error) {
	return eval.Fig3b(ctx, cfg)
}

// Fig4 runs the detuning x precision collision-free yield sweep.
func Fig4(ctx context.Context, cfg ExperimentConfig, maxQubits int) ([]YieldSweepCell, error) {
	return eval.Fig4(ctx, cfg, maxQubits)
}

// Fig6 reproduces the MCM configurability analysis (20q chiplets).
func Fig6(ctx context.Context, cfg ExperimentConfig, batch, maxDim int) (Fig6Result, error) {
	return eval.Fig6(ctx, cfg, batch, maxDim)
}

// Fig7 generates the CX-infidelity-vs-detuning calibration scatter.
func Fig7(ctx context.Context, cfg ExperimentConfig) (Fig7Result, error) {
	return eval.Fig7(ctx, cfg)
}

// Fig8 runs the MCM-vs-monolithic yield comparison over every enumerated
// system.
func Fig8(ctx context.Context, cfg ExperimentConfig) (Fig8Result, error) {
	return eval.Fig8(ctx, cfg)
}

// Fig9 computes the E_avg ratio heatmaps for the four link-quality
// assumptions; keys are eval.Fig9Ratios.
func Fig9(ctx context.Context, cfg ExperimentConfig) (map[string][]Fig9Cell, error) {
	return eval.Fig9(ctx, cfg)
}

// Fig9Ratios orders the Fig. 9 link-quality sweep keys.
var Fig9Ratios = eval.Fig9Ratios

// Fig10 evaluates the benchmark suite on the given MCM systems against
// their monolithic counterparts.
func Fig10(ctx context.Context, cfg ExperimentConfig, grids []Grid, samples int) ([]Fig10Point, error) {
	return eval.Fig10(ctx, cfg, grids, samples)
}

// Table2 compiles the benchmark suite onto the Table II systems.
func Table2(ctx context.Context, cfg ExperimentConfig) ([]Table2Row, error) {
	return eval.Table2(ctx, cfg)
}

// Eq1Example reproduces the Section V-C fabrication-output example.
func Eq1Example(ctx context.Context, cfg ExperimentConfig) (Eq1Result, error) {
	return eval.Eq1Example(ctx, cfg)
}

// EnumerateMCMs reproduces the paper's experimental system selection:
// unique-size MCMs per chiplet category up to maxQubits, square-first.
func EnumerateMCMs(maxQubits int) []Grid { return mcm.EnumerateGrids(maxQubits) }

// SquareMCMs returns only the n x n systems (the Fig. 9 subset).
func SquareMCMs(maxQubits int) []Grid { return mcm.SquareGrids(maxQubits) }
