package chipletqc

import (
	"chipletqc/internal/eval"
	"chipletqc/internal/mcm"
	"chipletqc/internal/stats"
	"chipletqc/internal/yield"
)

// Experiment re-exports: one entry point per figure/table of the paper's
// evaluation section. ExperimentConfig scales the Monte Carlo batches;
// DefaultExperimentConfig matches the paper, QuickExperimentConfig is
// sized for smoke tests. ExperimentConfig.Workers fans every Monte Carlo
// and sweep loop out across goroutines (0 = all CPU cores); results are
// bit-identical at any worker count because each trial derives its RNG
// stream from (seed, trial index).
type (
	// ExperimentConfig scales the experiment harness batches.
	ExperimentConfig = eval.Config
	// Summary is a five-number box-plot summary (Fig. 3b rows).
	Summary = stats.Summary
	// YieldSweepCell is one (step, sigma) yield curve of Fig. 4.
	YieldSweepCell = yield.SweepCell
	// Fig1Row, Fig2Result, ... mirror the paper's figures; see the eval
	// package documentation for field semantics.
	Fig1Row    = eval.Fig1Row
	Fig2Result = eval.Fig2Result
	Fig6Result = eval.Fig6Result
	Fig7Result = eval.Fig7Result
	Fig8Result = eval.Fig8Result
	Fig9Cell   = eval.Fig9Cell
	Fig10Point = eval.Fig10Point
	Table2Row  = eval.Table2Row
	Eq1Result  = eval.Eq1Result
)

// DefaultExperimentConfig returns full-paper-scale settings (batch 10^4,
// systems to 500 qubits).
func DefaultExperimentConfig(seed int64) ExperimentConfig {
	return eval.DefaultConfig(seed)
}

// QuickExperimentConfig returns reduced settings for smoke runs.
func QuickExperimentConfig(seed int64) ExperimentConfig {
	return eval.QuickConfig(seed)
}

// Fig1 quantifies the yield/infidelity trade-off versus module size.
func Fig1(cfg ExperimentConfig) []Fig1Row { return eval.Fig1(cfg) }

// Fig2 computes the illustrative wafer-output comparison.
func Fig2(monoDies, chipletsPerMono, defects int) Fig2Result {
	return eval.Fig2(monoDies, chipletsPerMono, defects)
}

// Fig3b generates CX-infidelity box plots for 27/65/127-qubit devices.
func Fig3b(cfg ExperimentConfig) []Summary { return eval.Fig3b(cfg) }

// Fig4 runs the detuning x precision collision-free yield sweep.
func Fig4(cfg ExperimentConfig, maxQubits int) []YieldSweepCell {
	return eval.Fig4(cfg, maxQubits)
}

// Fig6 reproduces the MCM configurability analysis (20q chiplets).
func Fig6(cfg ExperimentConfig, batch, maxDim int) Fig6Result {
	return eval.Fig6(cfg, batch, maxDim)
}

// Fig7 generates the CX-infidelity-vs-detuning calibration scatter.
func Fig7(cfg ExperimentConfig) Fig7Result { return eval.Fig7(cfg) }

// Fig8 runs the MCM-vs-monolithic yield comparison over every enumerated
// system.
func Fig8(cfg ExperimentConfig) Fig8Result { return eval.Fig8(cfg) }

// Fig9 computes the E_avg ratio heatmaps for the four link-quality
// assumptions; keys are eval.Fig9Ratios.
func Fig9(cfg ExperimentConfig) map[string][]Fig9Cell { return eval.Fig9(cfg) }

// Fig9Ratios orders the Fig. 9 link-quality sweep keys.
var Fig9Ratios = eval.Fig9Ratios

// Fig10 evaluates the benchmark suite on the given MCM systems against
// their monolithic counterparts.
func Fig10(cfg ExperimentConfig, grids []Grid, samples int) ([]Fig10Point, error) {
	return eval.Fig10(cfg, grids, samples)
}

// Table2 compiles the benchmark suite onto the Table II systems.
func Table2(cfg ExperimentConfig) ([]Table2Row, error) { return eval.Table2(cfg) }

// Eq1Example reproduces the Section V-C fabrication-output example.
func Eq1Example(cfg ExperimentConfig) Eq1Result { return eval.Eq1Example(cfg) }

// EnumerateMCMs reproduces the paper's experimental system selection:
// unique-size MCMs per chiplet category up to maxQubits, square-first.
func EnumerateMCMs(maxQubits int) []Grid { return mcm.EnumerateGrids(maxQubits) }

// SquareMCMs returns only the n x n systems (the Fig. 9 subset).
func SquareMCMs(maxQubits int) []Grid { return mcm.SquareGrids(maxQubits) }
