package chipletqc_test

import (
	"context"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"chipletqc"
)

// facadeServeExp is a caller-defined experiment used to drive the
// daemon facade; the registry is global per test binary, so register
// exactly once.
type facadeServeExp struct{ runs sync.Map }

func (e *facadeServeExp) Name() string     { return "facade-serve-exp" }
func (e *facadeServeExp) Describe() string { return "facade daemon integration probe" }

func (e *facadeServeExp) Run(ctx context.Context, cfg chipletqc.ExperimentConfig) (chipletqc.Artifact, error) {
	fp := chipletqc.ConfigFingerprint(cfg)
	n, _ := e.runs.LoadOrStore(fp, 0)
	e.runs.Store(fp, n.(int)+1)
	scn := cfg.ResolvedScenario()
	return chipletqc.Artifact{
		Name:                e.Name(),
		Description:         e.Describe(),
		Seed:                cfg.Seed,
		Scenario:            scn.Name,
		ScenarioFingerprint: scn.Fingerprint(),
		Fingerprint:         fp,
		Trials:              1,
	}, nil
}

var serveExp = &facadeServeExp{}
var registerServeExp = sync.OnceFunc(func() { chipletqc.RegisterExperiment(serveExp) })

// TestCampaignServerFacade drives the daemon entirely through the
// public facade: mount the handler, submit the same plan twice through
// a CampaignClient, watch the event stream, and fetch an artifact by
// key — the repeat must be served from the store without re-running
// the experiment.
func TestCampaignServerFacade(t *testing.T) {
	registerServeExp()
	st := chipletqc.OpenMemStore()
	srv, handler := chipletqc.CampaignHandler(chipletqc.CampaignServerOptions{Store: st, Workers: 2})
	ts := httptest.NewServer(handler)
	defer ts.Close()
	defer srv.Drain()

	c := chipletqc.NewCampaignClient(ts.URL)
	c.HTTPClient = ts.Client()
	plan := chipletqc.CampaignPlan{
		Experiments: []string{"facade-serve-exp"},
		Scenarios:   []string{"paper", "future-fab"},
		Seed:        3,
	}

	job, err := c.Submit(context.Background(), plan, false)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	var events []chipletqc.CampaignEventJSON
	final, err := c.Watch(context.Background(), job.ID, func(e chipletqc.CampaignEventJSON) {
		events = append(events, e)
	})
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if final.State != chipletqc.CampaignJobDone || final.Executed != 2 {
		t.Fatalf("first job: state %s executed %d, want done/2", final.State, final.Executed)
	}
	if len(events) != 4 {
		t.Errorf("watched %d events, want 4 (run+done per cell)", len(events))
	}

	repeat, err := c.Submit(context.Background(), plan, false)
	if err != nil {
		t.Fatalf("repeat Submit: %v", err)
	}
	refinal, err := c.Watch(context.Background(), repeat.ID, nil)
	if err != nil {
		t.Fatalf("repeat Watch: %v", err)
	}
	if refinal.State != chipletqc.CampaignJobDone || refinal.Executed != 0 || refinal.Cached != 2 {
		t.Fatalf("repeat job: state %s executed %d cached %d, want done/0/2", refinal.State, refinal.Executed, refinal.Cached)
	}
	serveExp.runs.Range(func(key, value any) bool {
		if value.(int) != 1 {
			t.Errorf("cell %v executed %d times, want exactly 1 (repeat must be cached)", key, value)
		}
		return true
	})

	cell := final.Cells[0]
	a, ok, err := c.Artifact(context.Background(), cell.Experiment, cell.Fingerprint)
	if err != nil || !ok {
		t.Fatalf("Artifact: ok=%t err=%v", ok, err)
	}
	if a.Fingerprint != cell.Fingerprint || a.Name != cell.Experiment {
		t.Errorf("fetched artifact identifies as (%s, %s), want (%s, %s)", a.Name, a.Fingerprint, cell.Experiment, cell.Fingerprint)
	}

	status, err := c.Status(context.Background())
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if status.Done != 2 || status.StoreRecords != 2 {
		t.Errorf("server status done %d records %d, want 2 and 2", status.Done, status.StoreRecords)
	}
}

// TestServeCampaignsDrains pins the one-call server form: a cancelled
// context must drain the daemon and return nil.
func TestServeCampaignsDrains(t *testing.T) {
	registerServeExp()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- chipletqc.ServeCampaignsOn(ctx, l, chipletqc.CampaignServerOptions{Store: chipletqc.OpenMemStore()})
	}()

	c := chipletqc.NewCampaignClient(l.Addr().String())
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.Status(context.Background()); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never answered Status")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeCampaignsOn returned %v after context cancellation, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("ServeCampaignsOn did not return after context cancellation")
	}
}
