// Quickstart: build a 3x3 multi-chip module of 20-qubit chiplets, walk
// the full paper pipeline — yield simulation, chiplet fabrication, KGD
// binning, MCM assembly — through the context-first API, compare the
// result against the equivalent 180-qubit monolithic device, and finish
// with a run through the Experiment registry. Pass -scenario to run the
// whole walk under a registered non-paper device world
// (`go run ./examples/quickstart -scenario future-fab`).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"chipletqc"
)

func main() {
	scen := flag.String("scenario", chipletqc.ScenarioPaper, "registered device scenario to simulate")
	flag.Parse()
	scn, err := chipletqc.LookupScenario(*scen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device scenario: %s (%s) — %s\n\n", scn.Name, scn.Fingerprint(), scn.Description)
	// Every Monte Carlo entry point is context-first: cancelling ctx
	// (e.g. on SIGINT, or a deadline) stops a campaign within one
	// in-flight trial per worker.
	ctx := context.Background()

	// Architectures: a 3x3 MCM of 20q chiplets and its 180q monolithic
	// counterpart.
	mcmDev, err := chipletqc.MCM(3, 3, 20)
	if err != nil {
		log.Fatal(err)
	}
	mono := chipletqc.Monolithic(180)
	fmt.Printf("MCM:        %s (%d qubits, %d chips, %d inter-chip links)\n",
		mcmDev.Name, mcmDev.N, mcmDev.Chips, len(mcmDev.Link))
	fmt.Printf("Monolithic: %s (%d qubits)\n\n", mono.Name, mono.N)

	// Collision-free yield at laser-tuned fabrication precision
	// (sigma_f = 0.014 GHz), Table I criteria.
	monoYield, err := chipletqc.SimulateYield(ctx, mono, chipletqc.YieldOptions{Scenario: scn.Name, Batch: 2000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monolithic 180q collision-free yield: %.4f\n", monoYield.Fraction())

	// Chiplet route: fabricate a batch, keep the collision-free bin,
	// assemble MCMs best-chiplets-first.
	batch, err := chipletqc.FabricateBatch(ctx, 20, 2000, chipletqc.BatchOptions{Scenario: scn.Name, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("20q chiplet collision-free yield:     %.4f\n", batch.Yield())

	mods, st, err := chipletqc.AssembleMCMs(ctx, batch, 3, 3, chipletqc.AssembleOptions{Scenario: scn.Name, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("complete collision-free MCMs:         %d (post-assembly yield %.4f)\n",
		st.MCMs, st.PostAssemblyYield)
	if monoYield.Fraction() > 0 {
		fmt.Printf("yield advantage:                      %.1fx\n\n",
			st.PostAssemblyYield/monoYield.Fraction())
	}

	// Average two-qubit infidelity of the best assembled module.
	if len(mods) > 0 {
		fmt.Printf("best MCM E_avg:  %.5f\n", mods[0].EAvg())
		fmt.Printf("worst MCM E_avg: %.5f\n", mods[len(mods)-1].EAvg())
	}

	// Compile a benchmark at 80% utilisation and report Table II style
	// gate counts.
	width := chipletqc.UtilizedQubits(mcmDev.N)
	circ := chipletqc.DecomposeCircuit(chipletqc.GHZ(width))
	res, err := chipletqc.Compile(circ, mcmDev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGHZ-%d compiled onto the MCM: %s (1q / 2q / 2q critical), %d SWAPs inserted\n",
		width, res.Counts, res.SwapsInserted)

	// The Experiment registry makes every paper workload addressable by
	// name (the same catalog cmd/figures runs: `figures -list`). Each
	// run yields a self-describing Artifact with a stable text
	// rendering and a JSON form for machine consumption.
	fmt.Println("\nregistered experiments:")
	for _, e := range chipletqc.Experiments() {
		fmt.Printf("  %-10s %s\n", e.Name(), e.Describe())
	}

	// Device scenarios make the same registry run under any device
	// world: every workload accepts a scenario-bearing config, and the
	// resulting Artifact records which scenario (name + fingerprint)
	// produced it.
	fmt.Println("\nregistered device scenarios:")
	for _, sc := range chipletqc.Scenarios() {
		fmt.Printf("  %-20s %s\n", sc.Name, sc.Description)
	}
	exp, _ := chipletqc.LookupExperiment("eq1")
	cfg, err := chipletqc.ExperimentConfigFor(scn.Name, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg.MonoBatch, cfg.ChipletBatch = 500, 500
	artifact, err := exp.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := artifact.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
