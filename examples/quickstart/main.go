// Quickstart: build a 3x3 multi-chip module of 20-qubit chiplets, walk
// the full paper pipeline — yield simulation, chiplet fabrication, KGD
// binning, MCM assembly — and compare the result against the equivalent
// 180-qubit monolithic device.
package main

import (
	"fmt"
	"log"

	"chipletqc"
)

func main() {
	// Architectures: a 3x3 MCM of 20q chiplets and its 180q monolithic
	// counterpart.
	mcmDev, err := chipletqc.MCM(3, 3, 20)
	if err != nil {
		log.Fatal(err)
	}
	mono := chipletqc.Monolithic(180)
	fmt.Printf("MCM:        %s (%d qubits, %d chips, %d inter-chip links)\n",
		mcmDev.Name, mcmDev.N, mcmDev.Chips, len(mcmDev.Link))
	fmt.Printf("Monolithic: %s (%d qubits)\n\n", mono.Name, mono.N)

	// Collision-free yield at laser-tuned fabrication precision
	// (sigma_f = 0.014 GHz), Table I criteria.
	monoYield := chipletqc.SimulateYield(mono, chipletqc.YieldOptions{Batch: 2000, Seed: 1})
	fmt.Printf("monolithic 180q collision-free yield: %.4f\n", monoYield.Fraction())

	// Chiplet route: fabricate a batch, keep the collision-free bin,
	// assemble MCMs best-chiplets-first.
	batch, err := chipletqc.FabricateBatch(20, 2000, chipletqc.BatchOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("20q chiplet collision-free yield:     %.4f\n", batch.Yield())

	mods, st := chipletqc.AssembleMCMs(batch, 3, 3, chipletqc.AssembleOptions{Seed: 1})
	fmt.Printf("complete collision-free MCMs:         %d (post-assembly yield %.4f)\n",
		st.MCMs, st.PostAssemblyYield)
	if monoYield.Fraction() > 0 {
		fmt.Printf("yield advantage:                      %.1fx\n\n",
			st.PostAssemblyYield/monoYield.Fraction())
	}

	// Average two-qubit infidelity of the best assembled module.
	if len(mods) > 0 {
		fmt.Printf("best MCM E_avg:  %.5f\n", mods[0].EAvg())
		fmt.Printf("worst MCM E_avg: %.5f\n", mods[len(mods)-1].EAvg())
	}

	// Compile a benchmark at 80% utilisation and report Table II style
	// gate counts.
	width := chipletqc.UtilizedQubits(mcmDev.N)
	circ := chipletqc.DecomposeCircuit(chipletqc.GHZ(width))
	res, err := chipletqc.Compile(circ, mcmDev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGHZ-%d compiled onto the MCM: %s (1q / 2q / 2q critical), %d SWAPs inserted\n",
		width, res.Counts, res.SwapsInserted)
}
