// Allocationstudy investigates the frequency-allocation design space
// around the paper's choices using the fast analytic yield model:
//
//  1. Is the symmetric 0.06 GHz step really optimal, including
//     asymmetric alternatives? (Paper Section IV-B and its future work.)
//  2. Can simulated annealing over per-qubit class assignments beat the
//     hand-designed heavy-hex three-frequency pattern?
//  3. How well does the analytic model track Monte Carlo?
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"chipletqc"
)

func main() {
	scen := flag.String("scenario", chipletqc.ScenarioPaper, "registered device scenario for the Monte Carlo cross-check")
	flag.Parse()
	if _, err := chipletqc.LookupScenario(*scen); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	spec, err := chipletqc.ChipletSpec(60)
	if err != nil {
		panic(err)
	}
	dev := chipletqc.Monolithic(spec.Qubits())
	fmt.Printf("device: %s (%d qubits)\n\n", dev.Name, dev.N)

	// 1. Step-spacing search over a fine grid, symmetric and not.
	steps := []float64{0.045, 0.050, 0.055, 0.060, 0.065, 0.070}
	lo, hi, y := chipletqc.SearchSteps(dev, chipletqc.SigmaLaserTuned, steps)
	fmt.Printf("step search over %v GHz:\n", steps)
	fmt.Printf("  best spacing: F0->F1 = %.3f, F1->F2 = %.3f (analytic yield %.4f)\n\n",
		lo, hi, y)

	// 2. Annealing class assignments against the pattern.
	res := chipletqc.OptimizeAllocation(dev, chipletqc.SigmaLaserTuned, 30000, 7)
	fmt.Printf("allocation annealing (30k iterations):\n")
	fmt.Printf("  pattern log-yield:   %.4f\n", res.PatternLogYield)
	fmt.Printf("  optimised log-yield: %.4f\n", res.LogYield)
	fmt.Printf("  improvement:         %.4fx\n\n", res.Improvement())

	// 3. Analytic vs Monte Carlo across precisions — both sides under
	// the same device scenario, so the deviation measures the
	// independence approximation, not a collision-threshold mismatch.
	plan := chipletqc.AsymmetricFreqPlan(5.0, lo, hi)
	fmt.Printf("%12s %12s %12s\n", "sigma_GHz", "analytic", "monte_carlo")
	for _, sigma := range []float64{0.006, 0.010, 0.014, 0.0185} {
		an, err := chipletqc.AnalyticYieldFor(*scen, dev, plan, sigma)
		if err != nil {
			log.Fatal(err)
		}
		mcRes, err := chipletqc.SimulateYield(ctx, dev, chipletqc.YieldOptions{
			Scenario: *scen,
			Batch:    3000, Sigma: chipletqc.Ptr(sigma), Step: chipletqc.Ptr(lo), Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		mc := mcRes.Fraction()
		fmt.Printf("%12.4f %12.4f %12.4f\n", sigma, an, mc)
	}

	fmt.Println("\nconclusions:")
	fmt.Println("  - the symmetric 0.06 GHz spacing survives the asymmetric sweep")
	fmt.Println("  - annealing cannot meaningfully beat the heavy-hex pattern:")
	fmt.Println("    the hand allocation is (near-)optimal for three frequencies")
	fmt.Println("  - the closed-form model tracks Monte Carlo within a few percent,")
	fmt.Println("    slightly underestimating (independence approximation)")
}
