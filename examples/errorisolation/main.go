// Errorisolation quantifies the paper's Section V argument that MCMs
// confine correlated error events (stray radiation, cosmic rays): each
// chiplet is physically buffered from its neighbours, so an impact that
// would blanket a monolithic die corrupts at most one chiplet.
//
// The program sweeps the blast radius and prints the mean corrupted
// qubit fraction for a 3x3 MCM of 20-qubit chiplets versus the
// equivalent 180-qubit monolithic device, plus the isolation factor.
package main

import (
	"flag"
	"fmt"
	"log"

	"chipletqc"
)

func main() {
	scen := flag.String("scenario", chipletqc.ScenarioPaper, "registered device scenario (context only: ray isolation is topology-determined)")
	flag.Parse()
	scn, err := chipletqc.LookupScenario(*scen)
	if err != nil {
		log.Fatal(err)
	}

	mcmDev, err := chipletqc.MCM(3, 3, 20)
	if err != nil {
		log.Fatal(err)
	}
	mono := chipletqc.Monolithic(180)
	fmt.Printf("correlated-error campaign: %s vs %s (2000 impacts per radius)\n", mcmDev.Name, mono.Name)
	fmt.Printf("device scenario: %s — isolation depends only on the chip topology,\n", scn.Name)
	fmt.Println("so every registered scenario shows the same confinement advantage")
	fmt.Println()

	fmt.Printf("%10s %16s %16s %12s %18s\n",
		"radius", "mcm_corrupted", "mono_corrupted", "isolation", "mono_wipeouts")
	for _, radius := range []float64{1, 2, 4, 6, 8, 12, 20, 40} {
		cfg := chipletqc.RayConfig{Radius: radius, Events: 2000, Seed: 7}
		mcmRes, monoRes, isolation := chipletqc.CompareRays(mcmDev, mono, cfg)
		fmt.Printf("%10.0f %16.4f %16.4f %11.2fx %18d\n",
			radius, mcmRes.MeanCorrupted, monoRes.MeanCorrupted,
			isolation, monoRes.WholeDeviceEvents)
	}

	fmt.Println("\nreadout:")
	fmt.Println("  - small events are local on both architectures (isolation ~1x)")
	fmt.Println("  - as the blast radius approaches the die size, the monolithic")
	fmt.Println("    device suffers whole-chip corruption while the MCM caps the")
	fmt.Println("    damage at one chiplet (isolation -> number of chiplets)")
}
