// Yieldexplorer sweeps the fabrication design space of Section IV-B:
// frequency detuning step x fabrication precision x device size, and
// prints where collision-free yield survives. It reproduces the paper's
// two central findings — 0.06 GHz is the optimal step, and precision
// below ~0.006 GHz is needed for 1000-qubit monolithic devices — and
// additionally explores the step grid at finer resolution than Fig. 4.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"chipletqc"
)

func main() {
	scen := flag.String("scenario", chipletqc.ScenarioPaper, "registered device scenario to sweep around")
	flag.Parse()
	if _, err := chipletqc.LookupScenario(*scen); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device scenario: %s (sigma/step flags sweep around its collision screening)\n\n", *scen)

	ctx := context.Background()
	const batch = 800
	sizes := []int{20, 60, 120, 250, 500}
	steps := []float64{0.040, 0.050, 0.055, 0.060, 0.065, 0.070}
	sigmas := []float64{
		chipletqc.SigmaAsFabricated, // 0.1323 GHz: raw fabrication
		chipletqc.SigmaLaserTuned,   // 0.014 GHz:  laser annealing
		chipletqc.SigmaScalingGoal,  // 0.006 GHz:  scaling threshold
	}

	for _, sigma := range sigmas {
		fmt.Printf("sigma_f = %.4f GHz\n", sigma)
		fmt.Printf("%8s", "step\\N")
		for _, n := range sizes {
			fmt.Printf("%8d", n)
		}
		fmt.Println()
		bestStep, bestYield := 0.0, -1.0
		for _, step := range steps {
			fmt.Printf("%8.3f", step)
			for _, n := range sizes {
				dev := chipletqc.Monolithic(n)
				res, err := chipletqc.SimulateYield(ctx, dev, chipletqc.YieldOptions{
					Scenario: *scen,
					Batch:    batch, Sigma: chipletqc.Ptr(sigma), Step: chipletqc.Ptr(step), Seed: 7,
				})
				if err != nil {
					log.Fatal(err)
				}
				y := res.Fraction()
				fmt.Printf("%8.3f", y)
				if n == 120 && y > bestYield {
					bestYield, bestStep = y, step
				}
			}
			fmt.Println()
		}
		fmt.Printf("  -> best step at 120 qubits: %.3f GHz (yield %.3f)\n\n",
			bestStep, bestYield)
	}

	fmt.Println("takeaways (cf. paper Fig. 4):")
	fmt.Println("  - at sigma_f = 0.1323 GHz yield collapses beyond ~20 qubits")
	fmt.Println("  - 0.06 GHz detuning maximises yield at every precision")
	fmt.Println("  - sigma_f <= 0.006 GHz keeps even 500-qubit devices viable")
}
