// Mcmdesigner answers the architect's question the paper poses: for a
// target machine size, which chiplet size and MCM dimension should you
// build? It scores every catalog configuration reaching the target on
// manufacturing output (Eq. 1 with assembly losses) and device quality
// (E_avg of the assembled modules), then recommends the dominant choice.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"

	"chipletqc"
)

const (
	targetQubits = 240
	batchSize    = 1500
	seed         = 11
)

// scen selects the device scenario every fabrication, assembly, and
// yield call below runs under — the recommendation shifts with the
// device world (try -scenario future-fab or relaxed-thresholds).
var scen = flag.String("scenario", chipletqc.ScenarioPaper, "registered device scenario to design under")

type candidate struct {
	chiplet    int
	rows, cols int
	qubits     int
	mcms       int
	postYield  float64
	bestEAvg   float64
	meanEAvg   float64
}

func main() {
	flag.Parse()
	if _, err := chipletqc.LookupScenario(*scen); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	fmt.Printf("designing a ~%d-qubit machine from catalog chiplets (scenario %s)\n\n",
		targetQubits, *scen)

	var cands []candidate
	for _, cq := range chipletqc.ChipletSizes() {
		rows, cols, ok := dimensionsFor(targetQubits, cq)
		if !ok {
			continue
		}
		batch, err := chipletqc.FabricateBatch(ctx, cq, batchSize, chipletqc.BatchOptions{Scenario: *scen, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		mods, st, err := chipletqc.AssembleMCMs(ctx, batch, rows, cols, chipletqc.AssembleOptions{Scenario: *scen, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		c := candidate{
			chiplet: cq, rows: rows, cols: cols,
			qubits:    rows * cols * cq,
			mcms:      st.MCMs,
			postYield: st.PostAssemblyYield,
		}
		if len(mods) > 0 {
			c.bestEAvg = mods[0].EAvg()
			var sum float64
			for _, m := range mods {
				sum += m.EAvg()
			}
			c.meanEAvg = sum / float64(len(mods))
		}
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		log.Fatalf("no configuration reaches %d qubits", targetQubits)
	}

	// Monolithic baseline.
	mono := chipletqc.Monolithic(targetQubits)
	monoYield, err := chipletqc.SimulateYield(ctx, mono, chipletqc.YieldOptions{Scenario: *scen, Batch: batchSize, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s %6s %7s %6s %11s %10s %10s\n",
		"chiplet", "dim", "qubits", "MCMs", "post_yield", "best_Eavg", "mean_Eavg")
	for _, c := range cands {
		fmt.Printf("%7dq %3dx%-2d %7d %6d %11.4f %10.5f %10.5f\n",
			c.chiplet, c.rows, c.cols, c.qubits, c.mcms, c.postYield, c.bestEAvg, c.meanEAvg)
	}
	fmt.Printf("%8s %6s %7d %6.0f %11.4f %10s %10s   <- monolithic\n\n",
		"mono", "-", mono.N, monoYield.Fraction()*batchSize, monoYield.Fraction(), "-", "-")

	// Recommend: highest post-assembly yield among configurations whose
	// best module quality is within 15% of the overall best.
	bestQ := cands[0].bestEAvg
	for _, c := range cands {
		if c.mcms > 0 && c.bestEAvg < bestQ {
			bestQ = c.bestEAvg
		}
	}
	viable := cands[:0:0]
	for _, c := range cands {
		if c.mcms > 0 && c.bestEAvg <= bestQ*1.15 {
			viable = append(viable, c)
		}
	}
	sort.Slice(viable, func(i, j int) bool { return viable[i].postYield > viable[j].postYield })
	if len(viable) > 0 {
		r := viable[0]
		fmt.Printf("recommendation: %dx%d MCM of %dq chiplets (%d qubits) — "+
			"post-assembly yield %.4f, best module E_avg %.5f\n",
			r.rows, r.cols, r.chiplet, r.qubits, r.postYield, r.bestEAvg)
		if monoYield.Fraction() > 0 {
			fmt.Printf("that is %.1fx the monolithic yield at the same scale\n",
				r.postYield/monoYield.Fraction())
		} else {
			fmt.Println("the monolithic alternative had zero collision-free yield")
		}
	}
}

// dimensionsFor finds the most square rows x cols with rows*cols*chiplet
// == target (exact) and at least two chips.
func dimensionsFor(target, chiplet int) (rows, cols int, ok bool) {
	if target%chiplet != 0 {
		return 0, 0, false
	}
	chips := target / chiplet
	if chips < 2 {
		return 0, 0, false
	}
	best := -1
	for r := 1; r*r <= chips; r++ {
		if chips%r == 0 {
			best = r
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	return best, chips / best, true
}
