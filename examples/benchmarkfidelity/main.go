// Benchmarkfidelity reproduces the paper's application-level analysis
// for one system pair: it compiles all seven benchmarks onto a 2x2 MCM
// of 40-qubit chiplets and onto the equivalent 160-qubit monolithic
// device, assigns realistic gate errors to both, and reports the
// fidelity-product ratio (Fig. 10's y-axis) per benchmark.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"

	"chipletqc"
)

const (
	chipletQubits = 40
	rows, cols    = 2, 2
	seed          = 21
	batch         = 4000 // wafer-scaled chiplet batch
	monoBatch     = 4000
	instances     = 3
)

func main() {
	scenName := flag.String("scenario", chipletqc.ScenarioPaper, "registered device scenario to evaluate under")
	flag.Parse()
	scn, err := chipletqc.LookupScenario(*scenName)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	mcmDev, err := chipletqc.MCM(rows, cols, chipletQubits)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := chipletqc.ChipletSpec(chipletQubits)
	if err != nil {
		log.Fatal(err)
	}
	chip := chipletqc.BuildChiplet(spec)
	mono := chipletqc.Monolithic(mcmDev.N)
	fmt.Printf("comparing %s vs %s on the 7-benchmark suite (scenario %s)\n\n",
		mcmDev.Name, mono.Name, scn.Name)

	// MCM instances: best modules from a fabricated batch.
	b, err := chipletqc.FabricateBatch(ctx, chipletQubits, batch, chipletqc.BatchOptions{Scenario: scn.Name, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	mods, st, err := chipletqc.AssembleMCMs(ctx, b, rows, cols, chipletqc.AssembleOptions{Scenario: scn.Name, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	if len(mods) == 0 {
		log.Fatal("no MCMs assembled")
	}
	if len(mods) > instances {
		mods = mods[:instances]
	}
	fmt.Printf("MCM instances: best %d of %d assembled modules (chiplet yield %.3f)\n",
		len(mods), st.MCMs, st.ChipletYield)

	// Monolithic instances: collision-free survivors with sampled gate
	// errors.
	det := scn.DetuningModel(seed) // same device world as the MCM side
	monoInstances := collectMonoInstances(scn, mono, det)
	fmt.Printf("monolithic instances: %d collision-free of %d fabricated\n\n",
		len(monoInstances), monoBatch)

	width := chipletqc.UtilizedQubits(mcmDev.N)
	fmt.Printf("%-24s %12s %12s %10s\n", "benchmark", "logF_mcm", "logF_mono", "ratio")
	for _, bs := range chipletqc.Benchmarks() {
		circ := bs.Generate(width, seed)
		mcmCompiled, err := chipletqc.Compile(circ, mcmDev)
		if err != nil {
			log.Fatal(err)
		}
		var mcmLog float64
		for _, m := range mods {
			mcmLog += chipletqc.LogFidelity(mcmCompiled, m.Errors(mcmDev, chip))
		}
		mcmLog /= float64(len(mods))

		if len(monoInstances) == 0 {
			fmt.Printf("%-24s %12.2f %12s %10s\n", bs.Name, mcmLog, "-inf", "inf")
			continue
		}
		monoCompiled, err := chipletqc.Compile(circ, mono)
		if err != nil {
			log.Fatal(err)
		}
		var monoLog float64
		for _, a := range monoInstances {
			monoLog += chipletqc.LogFidelity(monoCompiled, a)
		}
		monoLog /= float64(len(monoInstances))
		fmt.Printf("%-24s %12.2f %12.2f %10.3g\n",
			bs.Name, mcmLog, monoLog, math.Exp(mcmLog-monoLog))
	}
	fmt.Println("\nratio > 1 means the MCM runs the benchmark with higher estimated success")
}

// collectMonoInstances fabricates monolithic devices under the scenario
// until `instances` collision-free ones are found, assigning each its
// gate errors.
func collectMonoInstances(scn chipletqc.Scenario, mono *chipletqc.Device, det *chipletqc.DetuningModel) []chipletqc.ErrorAssignment {
	var out []chipletqc.ErrorAssignment
	for i := int64(0); i < monoBatch && len(out) < instances; i++ {
		f := chipletqc.SampleFrequencies(seed+i, scn.Fab, mono)
		if !scn.CollisionFree(mono, f) {
			continue
		}
		out = append(out, chipletqc.AssignErrors(seed+i, mono, f, det))
	}
	return out
}
