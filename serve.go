package chipletqc

import (
	"context"
	"net"
	"net/http"

	"chipletqc/internal/campaign"
	"chipletqc/internal/daemon"
)

// Campaign daemon re-exports: the long-running service form of
// RunCampaign. A CampaignServer owns one open ArtifactStore and a FIFO
// job queue — clients POST CampaignPlans, watch per-cell progress over
// Server-Sent Events, and fetch stored artifacts by (experiment,
// fingerprint) key, so many clients share one warm cache and one
// bounded worker budget:
//
//	st, _ := chipletqc.OpenStore("artifacts")
//	defer st.Close()
//	err := chipletqc.ServeCampaigns(ctx, ":8080", chipletqc.CampaignServerOptions{Store: st})
//
//	// elsewhere:
//	c := chipletqc.NewCampaignClient("localhost:8080")
//	job, _ := c.Submit(ctx, plan, false)
//	final, _ := c.Watch(ctx, job.ID, nil)
//
// Cancelling the context (or POST /v1/shutdown) drains gracefully:
// in-flight cells finish or cancel cleanly, completed cells stay
// persisted, and interrupted jobs report as interrupted — not failed.
// The cmd/campaign binary wraps exactly this API (-serve, -submit,
// -watch, -job, -fetch, -status, -shutdown).
type (
	// CampaignServer is the daemon: one store, one job queue, one
	// HTTP API.
	CampaignServer = daemon.Server
	// CampaignServerOptions configures a CampaignServer (store, total
	// worker budget, concurrent job slots, logging).
	CampaignServerOptions = daemon.Options
	// CampaignSubmission is the submit request body: a plan plus the
	// force-re-execution knob.
	CampaignSubmission = daemon.Submission
	// CampaignJobState is a job's lifecycle position
	// (queued/running/done/failed/interrupted).
	CampaignJobState = daemon.State
	// CampaignJobStatus is the API's snapshot of one submitted job.
	CampaignJobStatus = daemon.JobStatus
	// CampaignCellStatus is one cell's position within a job.
	CampaignCellStatus = daemon.CellStatus
	// CampaignServerStatus is the daemon's own status snapshot.
	CampaignServerStatus = daemon.ServerStatus
	// CampaignClient talks to a CampaignServer over HTTP.
	CampaignClient = daemon.Client
	// CampaignEventJSON is the wire form of one campaign event on the
	// SSE stream.
	CampaignEventJSON = daemon.EventJSON
	// CampaignFanout broadcasts one campaign's event stream to many
	// concurrent subscribers with full-history replay — pass its Emit
	// as CampaignOptions.Progress to watch a run from several places.
	CampaignFanout = campaign.Fanout
)

// Campaign job states.
const (
	CampaignJobQueued      = daemon.StateQueued
	CampaignJobRunning     = daemon.StateRunning
	CampaignJobDone        = daemon.StateDone
	CampaignJobFailed      = daemon.StateFailed
	CampaignJobInterrupted = daemon.StateInterrupted
)

// NewCampaignServer returns an unstarted daemon over opts. Mount
// Handler on an existing mux, or drive it with Serve/ListenAndServe;
// ServeCampaigns is the one-call form.
func NewCampaignServer(opts CampaignServerOptions) *CampaignServer { return daemon.New(opts) }

// ServeCampaigns runs a campaign daemon on addr until ctx is cancelled
// or a shutdown request arrives, then drains gracefully. The caller
// keeps ownership of opts.Store and closes it after ServeCampaigns
// returns; a nil error means every job either finished or was drained
// cleanly.
func ServeCampaigns(ctx context.Context, addr string, opts CampaignServerOptions) error {
	return daemon.New(opts).ListenAndServe(ctx, addr)
}

// ServeCampaignsOn is ServeCampaigns over a caller-owned listener, for
// callers that need the bound address (tests, port-0 setups).
func ServeCampaignsOn(ctx context.Context, l net.Listener, opts CampaignServerOptions) error {
	return daemon.New(opts).Serve(ctx, l)
}

// CampaignHandler returns a new daemon's HTTP handler for mounting
// under a caller-owned http.Server; the returned server manages the
// job queue behind it (use its Drain for graceful shutdown).
func CampaignHandler(opts CampaignServerOptions) (*CampaignServer, http.Handler) {
	s := daemon.New(opts)
	return s, s.Handler()
}

// NewCampaignClient returns a client for the daemon at baseURL; a bare
// host:port or ":port" is promoted to an http:// URL.
func NewCampaignClient(baseURL string) *CampaignClient { return daemon.NewClient(baseURL) }

// NewCampaignFanout returns an open event fan-out.
func NewCampaignFanout() *CampaignFanout { return campaign.NewFanout() }
