package chipletqc

import (
	"context"
	"errors"
	"testing"
)

// Regression tests for the zero-value option bug of the v0 facade: the
// boolean `> 0` guards silently swallowed legitimate explicit zeros
// (LinkMean: 0, BondFailureScale: 0, Sigma: 0, MaxReshuffles: 0). The
// pointer-or-sentinel options make them expressible; these tests prove
// each explicit zero actually takes effect.

func TestAssembleOptionsLinkMeanZeroTakesEffect(t *testing.T) {
	batch := fabricateBatch(t, 20, 400, BatchOptions{Seed: 3})
	perfect, _ := assembleMCMs(t, batch, 2, 2, AssembleOptions{Seed: 3, LinkMean: Ptr(0.0)})
	if len(perfect) == 0 {
		t.Fatal("no modules assembled")
	}
	for i, m := range perfect {
		for e, v := range m.LinkErr {
			if v != 0 {
				t.Fatalf("module %d link %v error = %v, want exactly 0 (perfect links)", i, e, v)
			}
		}
	}
	// And it differs from the default (state-of-art 7.5%) outcome.
	def, _ := assembleMCMs(t, batch, 2, 2, AssembleOptions{Seed: 3})
	if perfect[0].EAvg() >= def[0].EAvg() {
		t.Errorf("perfect links EAvg %v should beat default %v",
			perfect[0].EAvg(), def[0].EAvg())
	}
}

func TestAssembleOptionsBondFailureScaleZeroTakesEffect(t *testing.T) {
	batch := fabricateBatch(t, 20, 400, BatchOptions{Seed: 4})
	_, perfect := assembleMCMs(t, batch, 3, 3, AssembleOptions{Seed: 4, BondFailureScale: Ptr(0.0)})
	if perfect.MCMs == 0 {
		t.Fatal("no modules assembled")
	}
	// Zero bump-bond failure: post-assembly yield equals assembly yield
	// exactly (BondSurvival == 1).
	if perfect.PostAssemblyYield != perfect.AssemblyYield {
		t.Errorf("scale 0: post-assembly yield %v != assembly yield %v",
			perfect.PostAssemblyYield, perfect.AssemblyYield)
	}
	// The v0 API silently mapped 0 back to the nominal scale 1; nominal
	// must strictly reduce yield on a linked system, so equality above
	// proves the zero took effect.
	_, nominal := assembleMCMs(t, batch, 3, 3, AssembleOptions{Seed: 4})
	if nominal.PostAssemblyYield >= nominal.AssemblyYield {
		t.Errorf("nominal bonding should lose yield: post %v vs assembly %v",
			nominal.PostAssemblyYield, nominal.AssemblyYield)
	}
}

func TestAssembleOptionsMaxReshufflesZeroTakesEffect(t *testing.T) {
	batch := fabricateBatch(t, 10, 600, BatchOptions{Seed: 5})
	_, none := assembleMCMs(t, batch, 3, 3, AssembleOptions{Seed: 5, MaxReshuffles: Ptr(0)})
	_, def := assembleMCMs(t, batch, 3, 3, AssembleOptions{Seed: 5})
	// Without reshuffles a colliding subset is abandoned immediately, so
	// the zero-budget run can never assemble more than the default.
	if none.MCMs > def.MCMs {
		t.Errorf("0 reshuffles assembled %d MCMs, more than default's %d", none.MCMs, def.MCMs)
	}
}

func TestYieldOptionsSigmaZeroTakesEffect(t *testing.T) {
	// Explicit Sigma 0 is noise-free fabrication: every device is
	// collision-free. The v0 API silently fell back to SigmaLaserTuned.
	res := simulateYield(t, Monolithic(60), YieldOptions{Batch: 100, Seed: 1, Sigma: Ptr(0.0)})
	if res.Fraction() != 1 {
		t.Errorf("sigma 0 yield = %v, want exactly 1", res.Fraction())
	}
	def := simulateYield(t, Monolithic(60), YieldOptions{Batch: 100, Seed: 1})
	if def.Fraction() >= 1 {
		t.Errorf("default sigma should collide sometimes at 60q, yield %v", def.Fraction())
	}
}

func TestBatchOptionsSigmaZeroTakesEffect(t *testing.T) {
	b := fabricateBatch(t, 20, 100, BatchOptions{Seed: 1, Sigma: Ptr(0.0)})
	if b.Yield() != 1 {
		t.Errorf("sigma 0 chiplet yield = %v, want exactly 1", b.Yield())
	}
}

func TestOptionValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := SimulateYield(ctx, Monolithic(20), YieldOptions{Sigma: Ptr(-0.1)}); err == nil {
		t.Error("negative Sigma should fail validation")
	}
	if _, err := SimulateYield(ctx, Monolithic(20), YieldOptions{Batch: -5}); err == nil {
		t.Error("negative Batch should fail validation")
	}
	if _, err := SimulateYield(ctx, Monolithic(20), YieldOptions{Precision: Ptr(-1.0)}); err == nil {
		t.Error("negative Precision should fail validation")
	}
	if _, err := FabricateBatch(ctx, 20, 10, BatchOptions{Sigma: Ptr(-1.0)}); err == nil {
		t.Error("negative batch Sigma should fail validation")
	}
	batch := fabricateBatch(t, 20, 50, BatchOptions{Seed: 1})
	if _, _, err := AssembleMCMs(ctx, batch, 2, 2, AssembleOptions{LinkMean: Ptr(-0.5)}); err == nil {
		t.Error("negative LinkMean should fail validation")
	}
	if _, _, err := AssembleMCMs(ctx, batch, 2, 2, AssembleOptions{BondFailureScale: Ptr(-1.0)}); err == nil {
		t.Error("negative BondFailureScale should fail validation")
	}
	if _, _, err := AssembleMCMs(ctx, batch, 2, 2, AssembleOptions{MaxReshuffles: Ptr(-1)}); err == nil {
		t.Error("negative MaxReshuffles should fail validation")
	}
}

func TestFacadeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimulateYield(ctx, Monolithic(100), YieldOptions{Batch: 10000}); !errors.Is(err, context.Canceled) {
		t.Errorf("SimulateYield err = %v, want context.Canceled", err)
	}
	if _, err := FabricateBatch(ctx, 20, 10000, BatchOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("FabricateBatch err = %v, want context.Canceled", err)
	}
	batch := fabricateBatch(t, 20, 100, BatchOptions{Seed: 1})
	if _, _, err := AssembleMCMs(ctx, batch, 2, 2, AssembleOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("AssembleMCMs err = %v, want context.Canceled", err)
	}
	if _, err := Fig8(ctx, QuickExperimentConfig(1)); !errors.Is(err, context.Canceled) {
		t.Errorf("Fig8 err = %v, want context.Canceled", err)
	}
}

// TestExperimentRegistryFacade exercises the public registry surface:
// enumeration, lookup, and a run through a registered experiment.
func TestExperimentRegistryFacade(t *testing.T) {
	names := ExperimentNames()
	if len(names) < 12 {
		t.Fatalf("registry lists %d experiments: %v", len(names), names)
	}
	if _, ok := LookupExperiment("fig8"); !ok {
		t.Fatal("fig8 missing from registry")
	}
	exp, ok := LookupExperiment("fig2")
	if !ok {
		t.Fatal("fig2 missing from registry")
	}
	a, err := exp.Run(context.Background(), QuickExperimentConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "fig2" || a.Payload == nil || a.Fingerprint == "" {
		t.Errorf("artifact incomplete: %+v", a)
	}
	if a.Fingerprint != ConfigFingerprint(QuickExperimentConfig(1)) {
		t.Error("fingerprint mismatch with ConfigFingerprint")
	}
}
