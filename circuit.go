package chipletqc

import (
	"chipletqc/internal/circuit"
	"chipletqc/internal/eval"
	"chipletqc/internal/graph"
	"chipletqc/internal/noise"
	"chipletqc/internal/qbench"
	"chipletqc/internal/qsim"
)

// Circuit-level re-exports: the gate IR, the benchmark generators, the
// statevector validation simulator, and the fidelity-product metric.
type (
	// Circuit is the ordered gate-list IR.
	Circuit = circuit.Circuit
	// Gate is one circuit operation.
	Gate = circuit.Gate
	// GateCounts bundles the Table II metrics (1q / 2q / 2q critical).
	GateCounts = circuit.Counts
	// State is a dense statevector (validation-scale, <= 24 qubits).
	State = qsim.State
	// ErrorAssignment maps device couplings to two-qubit infidelities.
	ErrorAssignment = noise.Assignment
	// Edge is an unordered qubit-pair coupling key.
	Edge = graph.Edge
)

// NewCircuit creates an empty circuit over n qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// DecomposeCircuit lowers a circuit to the native {1q, CX} basis.
func DecomposeCircuit(c *Circuit) *Circuit { return circuit.Decompose(c) }

// Simulate runs a circuit on a fresh |0...0> statevector. Intended for
// validation at small widths; it panics beyond 24 qubits.
func Simulate(c *Circuit) *State { return qsim.Run(c) }

// Benchmark generators, re-exported individually for direct use.

// BV builds a Bernstein-Vazirani circuit with the given hidden string.
func BV(n int, hidden uint64) *Circuit { return qbench.BV(n, hidden) }

// GHZ builds an n-qubit GHZ state preparation.
func GHZ(n int) *Circuit { return qbench.GHZ(n) }

// QAOA builds a depth-p MaxCut QAOA ansatz on a random near-3-regular
// graph.
func QAOA(n, rounds int, seed int64) *Circuit { return qbench.QAOA(n, rounds, seed) }

// Adder builds the Cuccaro ripple-carry adder computing b := a + b.
func Adder(n int, a, b uint64) *Circuit { return qbench.Adder(n, a, b) }

// Primacy builds a quantum-primacy style random circuit.
func Primacy(n, depth int, seed int64) *Circuit { return qbench.Primacy(n, depth, seed) }

// BitCode builds one round of bit-flip code syndrome measurement.
func BitCode(n int, dataPrep uint64) *Circuit { return qbench.BitCode(n, dataPrep) }

// TFIM builds a Trotterised 1-D transverse-field Ising simulation.
func TFIM(n, steps int, dt, j, h float64) *Circuit { return qbench.TFIM(n, steps, dt, j, h) }

// LogFidelity returns ln of the fidelity product over the compiled
// circuit's two-qubit gates under the given error assignment — the
// paper's ESP-style figure of merit (Section VII-B).
func LogFidelity(r *CompileResult, a ErrorAssignment) float64 {
	return eval.LogFidelity(r, a)
}

// FidelityProduct returns the fidelity product itself.
func FidelityProduct(r *CompileResult, a ErrorAssignment) float64 {
	return eval.Fidelity(r, a)
}
