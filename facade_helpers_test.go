package chipletqc

import (
	"context"
	"testing"
)

// Test-side wrappers over the ctx-first facade: they run under
// context.Background() and fail the test on an unexpected error.

func simulateYield(tb testing.TB, d *Device, opts YieldOptions) YieldResult {
	tb.Helper()
	res, err := SimulateYield(context.Background(), d, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

func fabricateBatch(tb testing.TB, chipletQubits, size int, opts BatchOptions) *Batch {
	tb.Helper()
	b, err := FabricateBatch(context.Background(), chipletQubits, size, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

func assembleMCMs(tb testing.TB, b *Batch, rows, cols int, opts AssembleOptions) ([]*AssembledMCM, AssemblyStats) {
	tb.Helper()
	mods, st, err := AssembleMCMs(context.Background(), b, rows, cols, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return mods, st
}
