package chipletqc

// The benchmark harness regenerates every table and figure of the
// paper's evaluation section. Each Benchmark* below corresponds to one
// figure/table (see DESIGN.md's experiment index); run with
//
//	go test -bench=. -benchmem
//
// Benchmarks run at reduced Monte Carlo scale so the full suite
// completes in minutes; cmd/figures runs the paper-scale versions and
// writes the full row/series output. Key reproduced quantities are
// attached to each benchmark via ReportMetric so regressions in the
// *shape* of the results (who wins, by what factor) are visible in CI.

import (
	"context"
	"math"
	"testing"
)

// benchSeed keeps every benchmark deterministic.
const benchSeed = 42

func benchConfig() ExperimentConfig {
	cfg := QuickExperimentConfig(benchSeed)
	cfg.MonoBatch = 300
	cfg.ChipletBatch = 300
	return cfg
}

// BenchmarkFig1YieldInfidelityTradeoff regenerates Fig. 1: yield falls
// and average infidelity rises with module size.
func BenchmarkFig1YieldInfidelityTradeoff(b *testing.B) {
	var rows []Fig1Row
	for i := 0; i < b.N; i++ {
		rows = must(Fig1(context.Background(), benchConfig()))
	}
	b.ReportMetric(rows[0].Yield, "yield@10q")
	b.ReportMetric(rows[len(rows)-1].Yield, "yield@250q")
	b.ReportMetric(rows[0].EAvg*1e3, "mErr@10q")
	b.ReportMetric(rows[len(rows)-1].EAvg*1e3, "mErr@250q")
}

// BenchmarkFig2WaferOutput regenerates Fig. 2: the monolithic vs chiplet
// wafer-output illustration (7 faulty devices per batch).
func BenchmarkFig2WaferOutput(b *testing.B) {
	var r Fig2Result
	for i := 0; i < b.N; i++ {
		r = Fig2(9, 4, 7)
	}
	b.ReportMetric(float64(r.MonoGood), "mono-good")
	b.ReportMetric(float64(r.ChipletGood), "chiplet-good")
}

// BenchmarkFig3bCXInfidelityBySize regenerates Fig. 3(b): median CX
// infidelity and spread grow with processor size (27/65/127 qubits).
func BenchmarkFig3bCXInfidelityBySize(b *testing.B) {
	var sums []Summary
	for i := 0; i < b.N; i++ {
		sums = must(Fig3b(context.Background(), benchConfig()))
	}
	b.ReportMetric(sums[0].Median*1e3, "median@27q")
	b.ReportMetric(sums[1].Median*1e3, "median@65q")
	b.ReportMetric(sums[2].Median*1e3, "median@127q")
}

// BenchmarkFig4YieldVsQubits regenerates Fig. 4: collision-free yield vs
// qubits for detunings 0.04-0.07 GHz and sigma_f in {0.1323, 0.014,
// 0.006} GHz. The reported metrics pin the optimum step (0.06).
func BenchmarkFig4YieldVsQubits(b *testing.B) {
	cfg := benchConfig()
	cfg.MonoBatch = 150
	var cells []YieldSweepCell
	for i := 0; i < b.N; i++ {
		cells = must(Fig4(context.Background(), cfg, 300))
	}
	for _, c := range cells {
		if c.Sigma != 0.014 {
			continue
		}
		// Yield of the ~100q device per step at laser-tuned precision.
		for _, p := range c.Points {
			if p.Qubits >= 95 && p.Qubits <= 110 {
				b.ReportMetric(p.Yield, "y100q@"+stepName(c.Step))
			}
		}
	}
}

func stepName(s float64) string {
	switch {
	case math.Abs(s-0.04) < 1e-9:
		return "40MHz"
	case math.Abs(s-0.05) < 1e-9:
		return "50MHz"
	case math.Abs(s-0.06) < 1e-9:
		return "60MHz"
	default:
		return "70MHz"
	}
}

// BenchmarkFig6Configurations regenerates Fig. 6: configuration count
// and assembled-MCM bound vs square MCM dimension from a 20q chiplet
// batch.
func BenchmarkFig6Configurations(b *testing.B) {
	var res Fig6Result
	for i := 0; i < b.N; i++ {
		res = must(Fig6(context.Background(), benchConfig(), 2000, 5))
	}
	b.ReportMetric(res.Yield, "chiplet-yield")
	b.ReportMetric(res.Rows[0].Log10Configs, "log10cfg@2x2")
	b.ReportMetric(float64(res.Rows[0].MaxMCMs), "mcms@2x2")
}

// BenchmarkFig7DetuningInfidelity regenerates Fig. 7: the CX infidelity
// vs detuning calibration scatter with pooled median ~0.012 and mean
// ~0.018.
func BenchmarkFig7DetuningInfidelity(b *testing.B) {
	var res Fig7Result
	for i := 0; i < b.N; i++ {
		res = must(Fig7(context.Background(), benchConfig()))
	}
	b.ReportMetric(res.Median*1e3, "median-milli")
	b.ReportMetric(res.Mean*1e3, "mean-milli")
}

// BenchmarkFig8MCMVsMonolithicYield regenerates Fig. 8: post-assembly
// MCM yield vs monolithic yield across systems, with bump-bond loss and
// the 100x bond-failure sensitivity line.
func BenchmarkFig8MCMVsMonolithicYield(b *testing.B) {
	cfg := benchConfig()
	cfg.MaxQubits = 200
	var res Fig8Result
	for i := 0; i < b.N; i++ {
		res = must(Fig8(context.Background(), cfg))
	}
	b.ReportMetric(res.ChipletYields[10], "chipyield@10q")
	b.ReportMetric(res.ChipletYields[20], "chipyield@20q")
	if imp, ok := res.Improvements[10]; ok {
		b.ReportMetric(imp, "improvement@10q")
	}
	if imp, ok := res.Improvements[20]; ok {
		b.ReportMetric(imp, "improvement@20q")
	}
}

// BenchmarkFig9InfidelityHeatmap regenerates Fig. 9: E_avg,MCM /
// E_avg,Mono for square MCMs under the four link-quality assumptions.
func BenchmarkFig9InfidelityHeatmap(b *testing.B) {
	cfg := benchConfig()
	cfg.MaxQubits = 180
	var res map[string][]Fig9Cell
	for i := 0; i < b.N; i++ {
		res = must(Fig9(context.Background(), cfg))
	}
	report := func(name string) {
		var sum float64
		var n int
		for _, c := range res[name] {
			if !math.IsNaN(c.Ratio) {
				sum += c.Ratio
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "ratio-"+name)
		}
	}
	report("state-of-art")
	report("ratio-1")
}

// BenchmarkFig10ApplicationFidelity regenerates Fig. 10: benchmark
// fidelity ratio MCM/monolithic on representative square systems.
func BenchmarkFig10ApplicationFidelity(b *testing.B) {
	cfg := benchConfig()
	spec20, err := ChipletSpec(20)
	if err != nil {
		b.Fatal(err)
	}
	spec40, err := ChipletSpec(40)
	if err != nil {
		b.Fatal(err)
	}
	grids := []Grid{
		{Rows: 2, Cols: 2, Spec: spec20},
		{Rows: 2, Cols: 2, Spec: spec40},
	}
	var pts []Fig10Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = Fig10(context.Background(), cfg, grids, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Mean log ratio over finite points: > 0 means MCM advantage.
	var sum float64
	var n int
	for _, p := range pts {
		if !p.MonoZero && !math.IsNaN(p.LogRatio) && !math.IsInf(p.LogRatio, 0) {
			sum += p.LogRatio
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "mean-log-ratio")
	}
	b.ReportMetric(float64(n), "finite-points")
}

// BenchmarkTable1CollisionCriteria exercises Table I: the hot-path
// collision-free check on a fabricated 127-qubit-class device.
func BenchmarkTable1CollisionCriteria(b *testing.B) {
	dev := Monolithic(127)
	f := SampleFrequencies(benchSeed, DefaultFabModel(), dev)
	b.ResetTimer()
	free := 0
	for i := 0; i < b.N; i++ {
		if CollisionFree(dev, f) {
			free++
		}
	}
	_ = free
}

// BenchmarkTable2CompiledBenchmarks regenerates Table II: compiled
// 1q / 2q / 2q-critical counts for the benchmark suite on 2x2 MCMs.
func BenchmarkTable2CompiledBenchmarks(b *testing.B) {
	var rows []Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = Table2(context.Background(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.ChipletQubits == 40 && r.Bench == "g" {
			b.ReportMetric(float64(r.Counts.TwoQ), "ghz-2q@160q")
			b.ReportMetric(float64(r.Counts.TwoQCritical), "ghz-2qcrit@160q")
		}
	}
}

// BenchmarkEq1FabricationOutput regenerates the Section V-C worked
// example: ~7.7x more 100-qubit systems from chiplet production.
func BenchmarkEq1FabricationOutput(b *testing.B) {
	var res Eq1Result
	for i := 0; i < b.N; i++ {
		res = must(Eq1Example(context.Background(), DefaultExperimentConfig(benchSeed)))
	}
	b.ReportMetric(res.MonoYield, "Ym")
	b.ReportMetric(res.ChipletYield, "Yc")
	b.ReportMetric(res.Gain, "gain")
}

// must unwraps a (value, error) pair inside a benchmark loop; the
// ctx-first API only fails on cancellation, which benchmarks never do.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
